// Lazy-deletion binary min-heap keyed by double, for the greedy
// set-cover / vertex-cover algorithm (Fig. 5 of the paper).
//
// The greedy cover's per-vertex cost alpha(v) = w(v) / |adj(v) ∩ F_i| only
// *increases* over the run (the uncovered-edge count shrinks). A lazy heap
// therefore works: pop the minimum entry, recompute the item's current
// key, and if the entry is stale re-push it with the fresh key. Each item
// is re-pushed at most once per key change, so total work is
// O(U log U) where U is the number of key updates.
#pragma once

#include <cstddef>
#include <queue>
#include <stdexcept>
#include <vector>

#include "util/common.hpp"

namespace hp {

class LazyMinHeap {
 public:
  void push(index_t item, double key) {
    heap_.push(Entry{key, item});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Pop entries until one whose stored key matches `current_key(item)`
  /// surfaces; stale entries are re-pushed with their fresh key when
  /// `still_live(item)` holds, otherwise dropped. Returns the item.
  /// Throws std::logic_error if the heap drains without a live entry.
  template <typename KeyFn, typename LiveFn>
  index_t pop_current(KeyFn&& current_key, LiveFn&& still_live) {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      if (!still_live(top.item)) continue;
      const double fresh = current_key(top.item);
      if (fresh <= top.key) return top.item;  // keys only grow: top is valid
      heap_.push(Entry{fresh, top.item});
    }
    throw std::logic_error{"LazyMinHeap: no live entries"};
  }

 private:
  struct Entry {
    double key;
    index_t item;
    bool operator>(const Entry& other) const {
      if (key != other.key) return key > other.key;
      return item > other.item;  // deterministic tie-break
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

}  // namespace hp
