// Shared declared-entity bounds for every hypergraph loader prologue.
//
// Each loader (text, hMETIS, binary, MatrixMarket, snapshot) starts by
// reading counts out of an untrusted header and must reject them before
// allocating anything -- a 30-byte header or one flipped word must not
// commit gigabytes of CSR offsets. The bound and the size-equation
// checks used to be copied per loader; they live here so every format
// enforces exactly one policy.
#pragma once

#include <cstddef>
#include <string>

#include "util/common.hpp"

namespace hp::io {

/// Largest vertex/edge count any hypergraph loader accepts from a file
/// header. 2^24 entities is an order of magnitude beyond the paper's
/// scope while bounding the worst-case header-driven allocation to
/// ~200MB.
inline constexpr long long kMaxDeclaredEntities = 1LL << 24;

/// Bounds-checked header count: rejects negatives and counts above
/// kMaxDeclaredEntities *before* any cast, so a corrupted header fails
/// with ParseError instead of a silent 32-bit reinterpretation or an
/// allocation bomb. `where` locates the value for the error message
/// ("line 3", "snapshot header"); `what` names it ("vertex count").
index_t check_declared_count(long long value, const char* what,
                             const std::string& where);

/// The declared-size sanity equation shared by the binary loaders
/// (binary, snapshot): both entity counts within kMaxDeclaredEntities
/// and the pin count no larger than the input itself -- every pin costs
/// at least one input byte in every supported encoding, so a pin count
/// exceeding the byte count is always corrupt. Throws ParseError with
/// `format` as the message prefix.
void check_declared_sizes(unsigned long long num_vertices,
                          unsigned long long num_edges,
                          unsigned long long num_pins,
                          std::size_t input_bytes, const char* format);

}  // namespace hp::io
