// Deterministic pseudo-random number generation for workload synthesis.
//
// All hyperproteome generators take an explicit 64-bit seed so that every
// benchmark table is reproducible run-to-run. We use xoshiro256** (public
// domain, Blackman & Vigna) rather than std::mt19937 because its state is
// small, it is fast, and -- crucially -- its output for a given seed is
// identical across standard library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hp {

/// xoshiro256** 1.0 generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64, as
  /// recommended by the xoshiro authors.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Standard normal via Box-Muller (no cached spare: keeps state small
  /// and reproducible under interleaving).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal sample: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Zipf-distributed integer in [1, n] with exponent s > 0, sampled by
  /// inversion on the precomputed CDF of the caller-supplied table, or by
  /// rejection when n is large. This overload uses rejection-inversion
  /// (Hormann & Derflinger) and is O(1) amortized.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index from a non-empty container size.
  std::size_t pick(std::size_t size) {
    return static_cast<std::size_t>(uniform(size));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

/// Sample from a discrete distribution given non-negative weights,
/// by building an alias table once (Walker / Vose). Efficient when many
/// samples are drawn from the same distribution.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights);

  /// Draw an index in [0, size()) with probability proportional to its
  /// weight.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace hp
