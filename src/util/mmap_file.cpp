#include "util/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define HP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace hp {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error{"MappedFile: " + what + " '" + path +
                           "': " + std::strerror(errno)};
}

}  // namespace

#if defined(HP_HAVE_MMAP)

MappedFile::MappedFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat", path);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    throw std::runtime_error{"MappedFile: not a regular file '" + path + "'"};
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      ::close(fd);
      size_ = 0;
      fail("cannot mmap", path);
    }
    data_ = mapping;
  }
  // The mapping outlives the descriptor.
  ::close(fd);
}

void MappedFile::release() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

#else  // fallback: read the file into an owned buffer

MappedFile::MappedFile(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open", path);
  in.seekg(0, std::ios::end);
  fallback_.resize(static_cast<std::size_t>(in.tellg()));
  in.seekg(0, std::ios::beg);
  if (!fallback_.empty()) {
    in.read(fallback_.data(), static_cast<std::streamsize>(fallback_.size()));
    if (!in) fail("cannot read", path);
    data_ = fallback_.data();
  }
  size_ = fallback_.size();
}

void MappedFile::release() noexcept {
  fallback_.clear();
  data_ = nullptr;
  size_ = 0;
}

#endif

MappedFile::~MappedFile() { release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      path_(std::move(other.path_)),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    fallback_ = std::move(other.fallback_);
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace hp
