// Common type aliases and assertion helpers shared by all hyperproteome
// libraries.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hp {

/// Index type for vertices (proteins) and hyperedges (complexes).
/// 32 bits keeps CSR arrays compact; all datasets in the paper fit easily.
using index_t = std::uint32_t;

/// Accumulator type for pair counts (|E|, overlap sums, ...).
using count_t = std::uint64_t;

/// Sentinel meaning "no index" / "deleted".
inline constexpr index_t kInvalidIndex = static_cast<index_t>(-1);

/// Error thrown when input data violates a structural precondition
/// (e.g. a hyperedge referencing a vertex that does not exist).
class InvalidInputError : public std::runtime_error {
 public:
  explicit InvalidInputError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Error thrown on malformed file contents.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// HP_REQUIRE: precondition check that survives NDEBUG. Used at API
/// boundaries where the cost is negligible relative to the work done.
#define HP_REQUIRE(cond, msg)                          \
  do {                                                 \
    if (!(cond)) throw ::hp::InvalidInputError{(msg)}; \
  } while (0)

}  // namespace hp
