#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace hp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument{"Table: need at least one column"};
  }
}

Table& Table::row() {
  if (!rows_.empty() && rows_.back().size() != headers_.size()) {
    throw std::logic_error{"Table: previous row incomplete"};
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  if (rows_.empty()) throw std::logic_error{"Table: call row() first"};
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error{"Table: too many cells in row"};
  }
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string{value}); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(unsigned value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string{buf});
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (r[c].size() > widths[c]) widths[c] = r[c].size();
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out << " | ";
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      out << text;
      out << std::string(widths[c] - text.size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c > 0 ? 3 : 0);
  }
  out << std::string(rule_len, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace hp
