// Least-squares fitting used for the paper's Figure 1 power-law analysis.
//
// The paper fits P(d) = c * d^(-gamma) by ordinary least squares on the
// log-log transformed points and reports log10(c), gamma, and the
// coefficient of determination R^2 (computed, per the paper, as
// 1 - r'r / y'y with y in deviations from its mean).
#pragma once

#include <cstddef>
#include <vector>

namespace hp {

/// Result of a simple linear regression y = a + b x.
struct LinearFit {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r_squared = 0.0;  ///< 1 - SS_res / SS_tot
  std::size_t n = 0;       ///< number of points used
};

/// Ordinary least squares on (x, y) pairs. Requires >= 2 points and
/// non-constant x; throws std::invalid_argument otherwise.
LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Result of a power-law fit P(d) = c * d^(-gamma).
struct PowerLawFit {
  double log10_c = 0.0;    ///< log10 of the prefactor (paper: 3.161)
  double gamma = 0.0;      ///< exponent (paper: 2.528)
  double r_squared = 0.0;  ///< goodness of the log-log linear fit
  std::size_t n = 0;       ///< number of (degree, frequency) points used
};

/// Fit a power law to a frequency table: frequencies[d] is the number of
/// items with value d (index 0 unused/ignored, as degree 0 has no log).
/// Only entries with frequency > 0 participate, matching how the paper's
/// log-log plot is drawn. Requires >= 2 usable points.
PowerLawFit power_law_fit(const std::vector<std::size_t>& frequencies);

/// Result of an exponential fit P(d) = c * exp(-lambda d), via least
/// squares on semi-log points. Used to show complex sizes fit neither
/// model well (paper section 2).
struct ExponentialFit {
  double log10_c = 0.0;
  double lambda = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;
};

ExponentialFit exponential_fit(const std::vector<std::size_t>& frequencies);

}  // namespace hp
