#include "util/stringutil.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/common.hpp"

namespace hp {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

long long parse_int(std::string_view s) {
  s = trim(s);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError{"expected integer, got '" + std::string{s} + "'"};
  }
  return value;
}

double parse_double(std::string_view s) {
  s = trim(s);
  // std::from_chars for double is available in libstdc++ 11+, but keep a
  // strtod fallback-free implementation for clarity.
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError{"expected real number, got '" + std::string{s} + "'"};
  }
  return value;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

}  // namespace hp
