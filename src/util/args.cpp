#include "util/args.hpp"

#include "util/common.hpp"
#include "util/stringutil.hpp"

namespace hp {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (!starts_with(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    std::string body = token.substr(2);
    if (body.empty()) throw ParseError{"Args: bare '--' is not a flag"};
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      if (name.empty()) throw ParseError{"Args: flag with empty name"};
      flags_[name] = body.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool Args::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string Args::get(const std::string& name,
                      const std::string& default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : parse_int(it->second);
}

double Args::get_double(const std::string& name, double default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : parse_double(it->second);
}

bool Args::get_bool(const std::string& name, bool default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string v = to_lower(it->second);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace hp
