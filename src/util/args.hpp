// Tiny command-line flag parser for the example programs and benches.
// Supports --name=value, --name value, and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hp {

class Args {
 public:
  /// Parse argv. Unrecognized bare tokens become positional arguments.
  /// Throws hp::ParseError on a malformed flag (e.g. "--=x").
  Args(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name,
                  const std::string& default_value) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Every parsed flag (name -> raw value). For forwarding layers: the
  /// analysis-server query client relays unconsumed CLI flags onto the
  /// wire as request args.
  const std::map<std::string, std::string>& flags() const { return flags_; }

  /// Name of the executable (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hp
