#include "util/linreg.hpp"

#include <cmath>
#include <stdexcept>

namespace hp {

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument{"linear_fit: x and y must have equal size"};
  }
  const std::size_t n = x.size();
  if (n < 2) {
    throw std::invalid_argument{"linear_fit: need at least two points"};
  }
  // Reject -inf/NaN up front: a caller that takes log10 of an empty
  // bucket would otherwise poison the sums and come back with a NaN
  // slope instead of an error.
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) {
      throw std::invalid_argument{
          "linear_fit: non-finite point (log of a zero-count bucket?)"};
    }
  }
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (sxx == 0.0) {
    throw std::invalid_argument{"linear_fit: x values are all equal"};
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.n = n;

  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - my) * (y[i] - my);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

namespace {
/// Collect the log-log / semi-log points with positive frequency.
/// Zero-count bins and the d=0 bin are skipped here -- log10 of either
/// would be -inf/undefined -- so the fits below only ever see finite
/// points (linear_fit still rejects non-finite input defensively).
void collect_points(const std::vector<std::size_t>& frequencies,
                    bool log_x, std::vector<double>& xs,
                    std::vector<double>& ys) {
  for (std::size_t d = 1; d < frequencies.size(); ++d) {
    if (frequencies[d] == 0) continue;
    xs.push_back(log_x ? std::log10(static_cast<double>(d))
                       : static_cast<double>(d));
    ys.push_back(std::log10(static_cast<double>(frequencies[d])));
  }
}
}  // namespace

PowerLawFit power_law_fit(const std::vector<std::size_t>& frequencies) {
  std::vector<double> xs, ys;
  collect_points(frequencies, /*log_x=*/true, xs, ys);
  if (xs.size() < 2) {
    throw std::invalid_argument{
        "power_law_fit: need at least two degrees with nonzero frequency"};
  }
  const LinearFit lin = linear_fit(xs, ys);
  PowerLawFit fit;
  fit.log10_c = lin.intercept;
  fit.gamma = -lin.slope;
  fit.r_squared = lin.r_squared;
  fit.n = lin.n;
  return fit;
}

ExponentialFit exponential_fit(const std::vector<std::size_t>& frequencies) {
  std::vector<double> xs, ys;
  collect_points(frequencies, /*log_x=*/false, xs, ys);
  if (xs.size() < 2) {
    throw std::invalid_argument{
        "exponential_fit: need at least two degrees with nonzero frequency"};
  }
  const LinearFit lin = linear_fit(xs, ys);
  ExponentialFit fit;
  fit.log10_c = lin.intercept;
  // Semi-log slope is -lambda * log10(e).
  fit.lambda = -lin.slope / std::log10(std::exp(1.0));
  fit.r_squared = lin.r_squared;
  fit.n = lin.n;
  return fit;
}

}  // namespace hp
