// Minimal leveled logger. Benchmarks print their tables to stdout; the
// logger writes diagnostics to stderr so tables stay machine-parseable.
//
// Each line is prefixed with a monotonic timestamp (seconds since
// process start, microsecond resolution) and a small per-thread id:
//   [   0.001234] [T0] [INFO] message
// The threshold can be set from the HP_LOG_LEVEL environment variable
// (debug|info|warn|error, case-insensitive); it is read once before the
// first message, or on demand via init_log_from_env().
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace hp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo
/// (or HP_LOG_LEVEL if set).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug" / "info" / "warn" / "error" (any case); nullopt on
/// anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// (Re-)read HP_LOG_LEVEL and apply it. Unset or unparsable values
/// leave the current threshold untouched. Called automatically once at
/// first use; exposed for tests and for re-reading after setenv.
void init_log_from_env();

/// The "[<timestamp>] [T<tid>] [<LEVEL>] " prefix a message at `level`
/// would get, timestamped now on the calling thread.
std::string log_prefix(LogLevel level);

/// Emit one formatted line to stderr if `level` passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() {
  return detail::LogLine{LogLevel::kDebug};
}
inline detail::LogLine log_info() { return detail::LogLine{LogLevel::kInfo}; }
inline detail::LogLine log_warn() { return detail::LogLine{LogLevel::kWarn}; }
inline detail::LogLine log_error() {
  return detail::LogLine{LogLevel::kError};
}

}  // namespace hp
