#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/stringutil.hpp"

namespace hp {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Seconds on the steady clock since the first call (~process start,
/// pinned by the static initializer below).
double monotonic_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

// Pin the epoch at static-initialization time so early log lines do not
// all read 0.000000 relative to their own first call.
const double g_epoch_pin = monotonic_seconds();

/// Small sequential per-thread id; stable for the thread's lifetime.
unsigned thread_id() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1);
  return id;
}

void ensure_env_applied() {
  std::call_once(g_env_once, [] { init_log_from_env(); });
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() {
  ensure_env_applied();
  return g_level.load();
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  const std::string lowered = to_lower(std::string{name});
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  return std::nullopt;
}

void init_log_from_env() {
  const char* env = std::getenv("HP_LOG_LEVEL");
  if (env == nullptr) return;
  if (const std::optional<LogLevel> level = parse_log_level(env)) {
    g_level.store(*level);
  }
}

std::string log_prefix(LogLevel level) {
  (void)g_epoch_pin;
  char buf[64];
  std::snprintf(buf, sizeof buf, "[%11.6f] [T%u] [%s] ",
                monotonic_seconds(), thread_id(), level_name(level));
  return buf;
}

void log_message(LogLevel level, const std::string& message) {
  ensure_env_applied();
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::string prefix = log_prefix(level);
  std::fprintf(stderr, "%s%s\n", prefix.c_str(), message.c_str());
}

}  // namespace hp
