// Read-only memory-mapped file (RAII).
//
// The zero-copy substrate for the snapshot format (core/snapshot/): a
// snapshot `open` maps the file and hands out spans into the mapping
// instead of parsing into freshly allocated vectors, so "loading" a
// hypergraph costs page faults, not a parse. The mapping is
// MAP_PRIVATE + PROT_READ; the pages are backed by the OS page cache
// and shared between processes mapping the same file.
//
// On platforms without POSIX mmap the class degrades to reading the
// whole file into an owned buffer -- same (data, size) interface, just
// without the zero-copy property.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hp {

class MappedFile {
 public:
  MappedFile() = default;

  /// Map `path` read-only. Throws std::runtime_error when the file
  /// cannot be opened, stat'ed, or mapped (with errno text). An empty
  /// file yields data() == nullptr, size() == 0.
  explicit MappedFile(const std::string& path);

  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// First byte of the mapping (page-aligned on mmap platforms), or
  /// nullptr for an empty/default-constructed instance.
  const void* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void release() noexcept;

  const void* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
  std::vector<char> fallback_;  // owns the bytes on non-mmap platforms
};

}  // namespace hp
