// Minimal CSV reading/writing for exporting benchmark series (e.g. the
// Figure 1 degree distribution points) to files a plotting tool can load.
#pragma once

#include <string>
#include <vector>

namespace hp {

/// Writer that escapes fields containing commas, quotes, or newlines.
class CsvWriter {
 public:
  /// Append one row. Fields are escaped per RFC 4180.
  void add_row(const std::vector<std::string>& fields);

  const std::string& buffer() const { return buffer_; }

  /// Write the accumulated buffer to `path`, throwing std::runtime_error
  /// on I/O failure.
  void save(const std::string& path) const;

 private:
  std::string buffer_;
};

/// Parse CSV text into rows of fields (RFC 4180 quoting). Throws
/// hp::ParseError on unterminated quotes.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace hp
