#include "bio/protein.hpp"

namespace hp::bio {

index_t ProteinRegistry::intern(const std::string& name) {
  HP_REQUIRE(!name.empty(), "ProteinRegistry: empty protein name");
  const auto [it, inserted] =
      index_.emplace(name, static_cast<index_t>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

index_t ProteinRegistry::id_of(const std::string& name) const {
  const auto it = index_.find(name);
  HP_REQUIRE(it != index_.end(),
             "ProteinRegistry: unknown protein '" + name + "'");
  return it->second;
}

const std::string& ProteinRegistry::name_of(index_t id) const {
  HP_REQUIRE(id < names_.size(), "ProteinRegistry: id out of range");
  return names_[id];
}

}  // namespace hp::bio
