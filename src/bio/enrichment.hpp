// Enrichment analysis of a protein set (the core proteome) against
// annotation flags, via the hypergeometric tail test.
//
// The paper's section 3 claim: "essential proteins constitute a higher
// fraction of the proteins in the core" (22 of the 32 known core
// proteins are essential vs a CYGD background of 878 essential out of
// 4,036 classified genes), and 24 of the 41 core proteins have homologs.
// We quantify "higher fraction" with a fold-enrichment ratio and a
// hypergeometric p-value.
#pragma once

#include <string>
#include <vector>

#include "bio/annotations.hpp"
#include "util/common.hpp"

namespace hp::bio {

/// P(X >= k) where X ~ Hypergeometric(population, successes, draws):
/// drawing `draws` items without replacement from a population containing
/// `successes` marked items. Computed in log space; exact for the sizes
/// involved here.
double hypergeometric_tail(count_t population, count_t successes,
                           count_t draws, count_t observed);

struct EnrichmentResult {
  std::string label;
  count_t set_size = 0;         ///< proteins tested (e.g. core size)
  count_t set_positive = 0;     ///< flagged proteins in the set
  count_t background_size = 0;
  count_t background_positive = 0;
  double set_fraction = 0.0;
  double background_fraction = 0.0;
  double fold_enrichment = 0.0; ///< set_fraction / background_fraction
  double p_value = 1.0;         ///< hypergeometric upper tail
};

/// Test whether `flag` is over-represented among `set` relative to the
/// whole population of `flag.size()` proteins.
EnrichmentResult enrichment(const std::vector<index_t>& set,
                            const std::vector<bool>& flag,
                            const std::string& label);

/// The paper's core-proteome report: essentiality (restricted to known
/// proteins, as the paper does), homology, and unknown-function counts.
struct CoreProteomeReport {
  count_t core_size = 0;
  count_t core_unknown = 0;
  count_t core_known = 0;
  count_t core_known_essential = 0;
  count_t core_homologs = 0;
  EnrichmentResult essential_enrichment;  ///< among known proteins
  EnrichmentResult homolog_enrichment;
};

CoreProteomeReport core_proteome_report(const std::vector<index_t>& core,
                                        const AnnotationSet& annotations);

}  // namespace hp::bio
