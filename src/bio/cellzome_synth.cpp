#include "bio/cellzome_synth.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/log.hpp"

namespace hp::bio {

CellzomeParams scaled_cellzome_params(index_t target_proteins) {
  HP_REQUIRE(target_proteins >= 64,
             "scaled_cellzome_params: need at least 64 proteins");
  CellzomeParams p;  // the calibrated 1,361-protein defaults
  const double scale =
      static_cast<double>(target_proteins) / static_cast<double>(p.num_proteins);
  const auto scaled = [scale](index_t value, index_t minimum) {
    const auto grown = static_cast<index_t>(
        std::llround(static_cast<double>(value) * scale));
    return std::max(minimum, grown);
  };
  // The planted core needs `core_memberships` distinct core complexes
  // per core protein, and singletons + core complexes must fit in the
  // complex count, so the floors below keep tiny targets constructible.
  p.num_complexes = scaled(p.num_complexes, 16);
  p.degree_one_proteins =
      std::min<index_t>(scaled(p.degree_one_proteins, 1),
                        target_proteins - p.max_degree);
  p.num_singletons = scaled(p.num_singletons, 1);
  p.core_proteins = scaled(p.core_proteins, p.core_memberships);
  p.core_complexes = scaled(p.core_complexes, p.core_memberships);
  p.hub_regions = scaled(p.hub_regions, 2);
  p.num_proteins = target_proteins;
  HP_REQUIRE(p.core_complexes + p.num_singletons <= p.num_complexes,
             "scaled_cellzome_params: inconsistent complex budget");
  return p;
}

std::vector<index_t> cellzome_degree_sequence(const CellzomeParams& p) {
  HP_REQUIRE(p.degree_one_proteins < p.num_proteins,
             "cellzome_degree_sequence: degree-1 count exceeds protein count");
  HP_REQUIRE(p.max_degree >= 2, "cellzome_degree_sequence: max_degree < 2");
  const index_t heavy = p.num_proteins - p.degree_one_proteins;

  // Power-law counts for degrees 2..max_degree by the largest-remainder
  // method, forcing at least one protein at max_degree so the surrogate
  // reproduces the paper's Delta_V = 21 exactly.
  std::vector<double> raw(p.max_degree + 1, 0.0);
  double total = 0.0;
  for (index_t d = 2; d <= p.max_degree; ++d) {
    raw[d] = std::pow(static_cast<double>(d), -p.gamma);
    total += raw[d];
  }
  std::vector<index_t> counts(p.max_degree + 1, 0);
  std::vector<std::pair<double, index_t>> remainders;
  index_t assigned = 0;
  for (index_t d = 2; d <= p.max_degree; ++d) {
    const double exact = raw[d] / total * static_cast<double>(heavy);
    counts[d] = static_cast<index_t>(std::floor(exact));
    assigned += counts[d];
    remainders.emplace_back(exact - std::floor(exact), d);
  }
  // Distribute the leftovers to the largest fractional parts
  // (ties broken toward smaller degrees for determinism).
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; assigned < heavy; ++i) {
    ++counts[remainders[i % remainders.size()].second];
    ++assigned;
  }
  if (counts[p.max_degree] == 0) {
    // Steal one protein from the most populous degree.
    index_t donor = 2;
    for (index_t d = 2; d < p.max_degree; ++d) {
      if (counts[d] > counts[donor]) donor = d;
    }
    --counts[donor];
    ++counts[p.max_degree];
  }

  std::vector<index_t> sequence;
  sequence.reserve(p.num_proteins);
  for (index_t d = p.max_degree; d >= 2; --d) {
    for (index_t i = 0; i < counts[d]; ++i) sequence.push_back(d);
  }
  for (index_t i = 0; i < p.degree_one_proteins; ++i) sequence.push_back(1);
  return sequence;
}

namespace {

/// Draw complex sizes: `num_singletons` ones, the rest lognormal in
/// [2, max_size], then adjust by +/-1 steps (respecting per-complex
/// minimums) until they sum to `target_pins`.
std::vector<index_t> draw_complex_sizes(const CellzomeParams& p,
                                        count_t target_pins,
                                        const std::vector<index_t>& minimum,
                                        Rng& rng) {
  const index_t n = p.num_complexes;
  std::vector<index_t> sizes(n, 0);
  for (index_t e = 0; e < p.num_singletons; ++e) sizes[e] = 1;

  const index_t variable = n - p.num_singletons;
  const double mean_target =
      (static_cast<double>(target_pins) - p.num_singletons) /
      static_cast<double>(variable);
  const double sigma = 0.9;
  const double mu = std::log(mean_target) - 0.5 * sigma * sigma;
  for (index_t e = p.num_singletons; e < n; ++e) {
    const double draw = rng.lognormal(mu, sigma);
    index_t s = static_cast<index_t>(std::llround(draw));
    s = std::clamp<index_t>(s, 2, p.max_complex_size);
    sizes[e] = std::max(s, minimum[e]);
  }

  count_t sum = std::accumulate(sizes.begin(), sizes.end(), count_t{0});
  // Random +/-1 walk toward the target; bounded below by the planted
  // minimums and above by max_complex_size.
  std::size_t guard = 0;
  // Generous; each iteration usually succeeds. Scaled surrogates can
  // start further from the target, so grow the bound with the pin count.
  const std::size_t guard_limit = std::max<std::size_t>(
      1000000, 32 * static_cast<std::size_t>(target_pins));
  while (sum != target_pins && guard++ < guard_limit) {
    const index_t e =
        p.num_singletons +
        static_cast<index_t>(rng.uniform(variable));
    if (sum > target_pins) {
      const index_t lo = std::max<index_t>(2, minimum[e]);
      if (sizes[e] > lo) {
        --sizes[e];
        --sum;
      }
    } else {
      if (sizes[e] < p.max_complex_size) {
        ++sizes[e];
        ++sum;
      }
    }
  }
  HP_REQUIRE(sum == target_pins,
             "draw_complex_sizes: could not match pin total");
  return sizes;
}

}  // namespace

ComplexDataset cellzome_surrogate(const CellzomeParams& p) {
  HP_REQUIRE(p.core_proteins <= p.num_proteins,
             "cellzome_surrogate: core larger than proteome");
  HP_REQUIRE(p.core_complexes + p.num_singletons <= p.num_complexes,
             "cellzome_surrogate: too many core complexes");
  Rng rng{p.seed};

  // --- 1. Degree sequence (descending; index = protein id). -----------
  const std::vector<index_t> degrees = cellzome_degree_sequence(p);
  const count_t target_pins =
      std::accumulate(degrees.begin(), degrees.end(), count_t{0});

  // --- 2. Planted core module. ----------------------------------------
  // Core proteins: the top `core_proteins` ids by degree (the sequence is
  // already descending). Each spends `core_memberships` of its degree
  // inside the core complexes, which occupy edge ids
  // [num_singletons, num_singletons + core_complexes).
  const index_t core_lo = p.num_singletons;
  std::vector<std::vector<index_t>> edge_members(p.num_complexes);
  std::vector<index_t> core_occupancy(p.num_complexes, 0);
  std::vector<index_t> residual_degree(degrees.begin(), degrees.end());

  for (index_t v = 0; v < p.core_proteins; ++v) {
    const index_t quota =
        std::min<index_t>(p.core_memberships, degrees[v]);
    HP_REQUIRE(quota >= 1, "cellzome_surrogate: core protein with degree 0");
    // Choose `quota` distinct core complexes.
    std::set<index_t> chosen;
    while (chosen.size() < quota) {
      chosen.insert(core_lo +
                    static_cast<index_t>(rng.uniform(p.core_complexes)));
    }
    for (index_t e : chosen) {
      edge_members[e].push_back(v);
      ++core_occupancy[e];
    }
    residual_degree[v] -= quota;
  }

  // --- 3. Complex sizes consistent with the pin total. ----------------
  std::vector<index_t> minimum(p.num_complexes, 1);
  for (index_t e = 0; e < p.num_complexes; ++e) {
    minimum[e] = std::max<index_t>(1, core_occupancy[e]);
  }
  const std::vector<index_t> sizes =
      draw_complex_sizes(p, target_pins, minimum, rng);

  // --- 4. Locality-biased wiring of the residual memberships. ---------
  // Pure stub matching would scatter each promiscuous protein across
  // unrelated complexes; in the real Cellzome data such proteins recur
  // in *related* pulldowns, producing the complex-complex overlaps that
  // drive containment cascades during the k-core peel. We therefore
  // place a protein's residual memberships inside a window of complex
  // ids around a random, slot-weighted center (window 0 = pure
  // configuration model).
  std::vector<index_t> slots(p.num_complexes, 0);
  std::vector<index_t> tokens;  // one entry per open slot, lazily pruned
  for (index_t e = 0; e < p.num_complexes; ++e) {
    slots[e] = sizes[e] > core_occupancy[e] ? sizes[e] - core_occupancy[e]
                                            : 0;
    for (index_t i = 0; i < slots[e]; ++i) tokens.push_back(e);
  }

  const auto allowed = [&](index_t e, index_t v) {
    if (slots[e] == 0) return false;
    // Core proteins keep exactly `core_memberships` core complexes; an
    // extra core membership would deepen the maximum core past target.
    if (e >= core_lo && e < core_lo + p.core_complexes &&
        v < p.core_proteins) {
      return false;
    }
    return std::find(edge_members[e].begin(), edge_members[e].end(), v) ==
           edge_members[e].end();
  };
  const auto take = [&](index_t e, index_t v) {
    edge_members[e].push_back(v);
    --slots[e];
  };
  const auto pick_token = [&]() -> index_t {
    while (!tokens.empty()) {
      const std::size_t i = rng.pick(tokens.size());
      const index_t e = tokens[i];
      if (slots[e] == 0) {  // stale token
        tokens[i] = tokens.back();
        tokens.pop_back();
        continue;
      }
      return e;
    }
    return kInvalidIndex;
  };

  // Anchor complexes for hub proteins (see hub_regions in the header).
  std::vector<index_t> anchors;
  for (index_t i = 0; i < p.hub_regions; ++i) {
    anchors.push_back(static_cast<index_t>(rng.uniform(p.num_complexes)));
  }

  count_t dropped = 0;
  for (index_t v = 0; v < p.num_proteins; ++v) {
    index_t remaining = residual_degree[v];
    if (remaining == 0) continue;
    if (p.locality_window > 0 && remaining >= 2) {
      const bool is_hub =
          !anchors.empty() && remaining >= p.hub_degree_threshold;
      // Center: hubs draw from the shared anchors; everyone else from a
      // slot-weighted random complex.
      index_t center = kInvalidIndex;
      for (int attempt = 0; attempt < 64 && center == kInvalidIndex;
           ++attempt) {
        const index_t e = is_hub ? anchors[rng.pick(anchors.size())]
                                 : pick_token();
        if (e == kInvalidIndex) break;
        if (allowed(e, v)) center = e;
      }
      if (center != kInvalidIndex) {
        take(center, v);
        --remaining;
        // Hubs roam a wider ring so most of their memberships stay in
        // the anchor's region rather than spilling to the global pool.
        const index_t window =
            is_hub ? p.locality_window * 4 : p.locality_window;
        for (index_t offset = 1; offset <= window && remaining > 0;
             ++offset) {
          const std::int64_t candidates[2] = {
              static_cast<std::int64_t>(center) - offset,
              static_cast<std::int64_t>(center) + offset};
          for (std::int64_t c : candidates) {
            if (remaining == 0) break;
            if (c < 0 || c >= static_cast<std::int64_t>(p.num_complexes)) {
              continue;
            }
            const index_t e = static_cast<index_t>(c);
            if (allowed(e, v)) {
              take(e, v);
              --remaining;
            }
          }
        }
      }
    }
    // Global slot-weighted placement for whatever is left.
    while (remaining > 0) {
      index_t placed_at = kInvalidIndex;
      for (int attempt = 0; attempt < 128 && placed_at == kInvalidIndex;
           ++attempt) {
        const index_t e = pick_token();
        if (e == kInvalidIndex) break;
        if (allowed(e, v)) placed_at = e;
      }
      if (placed_at == kInvalidIndex) {
        dropped += remaining;
        break;
      }
      take(placed_at, v);
      --remaining;
    }
  }
  if (dropped > 0) {
    log_debug() << "cellzome_surrogate: dropped " << dropped
                << " unplaceable memberships";
  }
  // Fix-up: a complex can end empty only when placement dropped all of
  // its slots; give it one arbitrary member so the dataset stays valid.
  for (index_t e = 0; e < p.num_complexes; ++e) {
    if (!edge_members[e].empty()) continue;
    edge_members[e].push_back(
        static_cast<index_t>(rng.uniform(p.num_proteins)));
  }

  // --- 5. Assemble dataset with names. ---------------------------------
  ComplexDataset data;
  // Vertex 0 carries the maximum degree by construction; per the paper
  // the top-degree protein is ADH1.
  for (index_t v = 0; v < p.num_proteins; ++v) {
    if (v == 0) {
      data.proteins.intern("ADH1");
    } else {
      char buf[16];
      std::snprintf(buf, sizeof buf, "YP%04u", static_cast<unsigned>(v));
      data.proteins.intern(buf);
    }
  }
  hyper::HypergraphBuilder builder{p.num_proteins};
  data.complex_names.reserve(p.num_complexes);
  for (index_t e = 0; e < p.num_complexes; ++e) {
    HP_REQUIRE(!edge_members[e].empty(),
               "cellzome_surrogate: generated an empty complex");
    builder.add_edge(edge_members[e]);
    char buf[16];
    std::snprintf(buf, sizeof buf, "CPLX%03u", static_cast<unsigned>(e));
    data.complex_names.push_back(buf);
  }
  data.hypergraph = builder.build();
  return data;
}

}  // namespace hp::bio
