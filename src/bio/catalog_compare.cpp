#include "bio/catalog_compare.hpp"

#include <algorithm>
#include <unordered_map>

namespace hp::bio {

std::vector<ComplexMatch> best_matches(const hyper::Hypergraph& predicted,
                                       const hyper::Hypergraph& reference) {
  HP_REQUIRE(predicted.num_vertices() == reference.num_vertices(),
             "best_matches: catalogs must share the protein universe");
  std::vector<ComplexMatch> matches(predicted.num_edges());
  std::unordered_map<index_t, index_t> overlap;  // reference edge -> |∩|
  for (index_t p = 0; p < predicted.num_edges(); ++p) {
    overlap.clear();
    for (index_t v : predicted.vertices_of(p)) {
      for (index_t r : reference.edges_of(v)) ++overlap[r];
    }
    ComplexMatch best;
    for (const auto& [r, inter] : overlap) {
      const double uni = static_cast<double>(predicted.edge_size(p)) +
                         static_cast<double>(reference.edge_size(r)) -
                         static_cast<double>(inter);
      const double jaccard = static_cast<double>(inter) / uni;
      if (jaccard > best.jaccard ||
          (jaccard == best.jaccard && r < best.counterpart)) {
        best.jaccard = jaccard;
        best.counterpart = r;
      }
    }
    matches[p] = best;
  }
  return matches;
}

CatalogComparison compare_catalogs(const hyper::Hypergraph& predicted,
                                   const hyper::Hypergraph& reference,
                                   double jaccard_threshold) {
  HP_REQUIRE(jaccard_threshold > 0.0 && jaccard_threshold <= 1.0,
             "compare_catalogs: threshold out of (0, 1]");
  const std::vector<ComplexMatch> forward =
      best_matches(predicted, reference);
  const std::vector<ComplexMatch> backward =
      best_matches(reference, predicted);

  CatalogComparison c;
  double jaccard_sum = 0.0;
  for (const ComplexMatch& m : forward) {
    jaccard_sum += m.jaccard;
    if (m.jaccard >= jaccard_threshold) ++c.matched_predicted;
  }
  for (const ComplexMatch& m : backward) {
    if (m.jaccard >= jaccard_threshold) ++c.matched_reference;
  }
  c.precision = predicted.num_edges() > 0
                    ? static_cast<double>(c.matched_predicted) /
                          predicted.num_edges()
                    : 1.0;
  c.recall = reference.num_edges() > 0
                 ? static_cast<double>(c.matched_reference) /
                       reference.num_edges()
                 : 1.0;
  c.f1 = (c.precision + c.recall) > 0.0
             ? 2.0 * c.precision * c.recall / (c.precision + c.recall)
             : 0.0;
  c.mean_jaccard = predicted.num_edges() > 0
                       ? jaccard_sum / predicted.num_edges()
                       : 0.0;
  return c;
}

}  // namespace hp::bio
