// One-call reproduction report: computes every quantity the paper's
// evaluation reports for a protein-complex dataset, with the published
// Cellzome values attached for side-by-side display.
//
// This is the library form of what the bench_* binaries print; it lets
// downstream users run the complete analysis on their own catalog
// (`hyperproteome report data.tsv`) and programmatically consume the
// numbers.
#pragma once

#include <optional>
#include <string>

#include "bio/complex_io.hpp"
#include "core/context/analysis_context.hpp"
#include "core/kcore.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "util/linreg.hpp"

namespace hp::bio {

struct PaperReport {
  // Section 2.
  hyper::HypergraphSummary summary;
  hyper::HyperPathSummary paths;
  PowerLawFit degree_fit;
  hyper::EdgeSizeFits size_fits;
  // Section 3.
  index_t max_core = 0;
  index_t core_proteins = 0;
  index_t core_complexes = 0;
  double core_seconds = 0.0;
  // Section 4.
  count_t cover_unit_size = 0;
  double cover_unit_degree = 0.0;
  count_t cover_deg2_size = 0;
  double cover_deg2_degree = 0.0;
  count_t multicover_size = 0;
  double multicover_degree = 0.0;
  count_t multicover_excluded = 0;
};

/// The paper's published values for the Cellzome dataset, for
/// side-by-side rendering (fields without a published number are
/// nullopt).
struct PaperReference {
  static PaperReference cellzome();

  std::optional<index_t> num_vertices, num_edges, components,
      degree_one_vertices, max_vertex_degree, diameter;
  std::optional<double> average_path, gamma, log10_c, r_squared;
  std::optional<index_t> max_core, core_proteins, core_complexes;
  std::optional<count_t> cover_unit_size, cover_deg2_size, multicover_size;
  std::optional<double> cover_unit_degree, cover_deg2_degree,
      multicover_degree;
};

/// Run the complete analysis (components, all-pairs paths, fits, core
/// decomposition, the three covers) against a shared artifact cache:
/// summary, paths, histograms, and the core decomposition are taken from
/// the context, so a caller that already touched them (e.g. the CLI)
/// pays for each exactly once.
PaperReport analyze(const hyper::AnalysisContext& context);

/// Convenience overload: runs against a fresh private context.
PaperReport analyze(const hyper::Hypergraph& h);

/// Render a side-by-side table ("quantity | paper | measured"); pass
/// PaperReference::cellzome() for the Cellzome columns or a default
/// reference for blank paper cells.
std::string render_report(const PaperReport& report,
                          const PaperReference& reference);

}  // namespace hp::bio
