#include "bio/paper_report.hpp"

#include <sstream>

#include "bio/bait.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hp::bio {

PaperReference PaperReference::cellzome() {
  PaperReference ref;
  ref.num_vertices = 1361;
  ref.num_edges = 232;
  ref.components = 33;
  ref.degree_one_vertices = 846;
  ref.max_vertex_degree = 21;
  ref.diameter = 6;
  ref.average_path = 2.568;
  ref.gamma = 2.528;
  ref.log10_c = 3.161;
  ref.r_squared = 0.963;
  ref.max_core = 6;
  ref.core_proteins = 41;
  ref.core_complexes = 54;
  ref.cover_unit_size = 109;
  ref.cover_unit_degree = 3.7;
  ref.cover_deg2_size = 233;
  ref.cover_deg2_degree = 1.14;
  ref.multicover_size = 558;
  ref.multicover_degree = 1.74;
  return ref;
}

PaperReport analyze(const hyper::Hypergraph& h) {
  const hyper::AnalysisContext context{h};
  return analyze(context);
}

PaperReport analyze(const hyper::AnalysisContext& context) {
  const hyper::Hypergraph& h = context.hypergraph();
  PaperReport report;
  report.summary = context.summary();
  report.paths = context.paths();
  report.degree_fit =
      hyper::vertex_degree_power_law(context.vertex_degree_histogram());
  report.size_fits = hyper::edge_size_fits(context.edge_size_histogram());

  Timer timer;
  const hyper::HyperCoreResult& cores = context.cores();
  report.core_seconds = timer.seconds();
  report.max_core = cores.max_core;
  report.core_proteins =
      static_cast<index_t>(cores.core_vertices(cores.max_core).size());
  report.core_complexes =
      static_cast<index_t>(cores.core_edges(cores.max_core).size());

  const BaitSelection unit = select_baits(h, BaitStrategy::kMinCardinality);
  report.cover_unit_size = unit.baits.size();
  report.cover_unit_degree = unit.average_degree;
  const BaitSelection deg2 = select_baits(h, BaitStrategy::kDegreeSquared);
  report.cover_deg2_size = deg2.baits.size();
  report.cover_deg2_degree = deg2.average_degree;
  const BaitSelection twice = select_baits(h, BaitStrategy::kDoubleCoverage);
  report.multicover_size = twice.baits.size();
  report.multicover_degree = twice.average_degree;
  report.multicover_excluded = twice.excluded_complexes.size();
  return report;
}

namespace {

template <typename T>
std::string opt_cell(const std::optional<T>& value) {
  if (!value.has_value()) return "-";
  if constexpr (std::is_floating_point_v<T>) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", *value);
    return buf;
  } else {
    return std::to_string(*value);
  }
}

std::string real_cell(double value, int precision = 3) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

}  // namespace

std::string render_report(const PaperReport& r, const PaperReference& ref) {
  Table t{{"quantity", "paper", "measured"}};
  t.row().cell("proteins |V|").cell(opt_cell(ref.num_vertices)).cell(
      static_cast<std::uint64_t>(r.summary.num_vertices));
  t.row().cell("complexes |F|").cell(opt_cell(ref.num_edges)).cell(
      static_cast<std::uint64_t>(r.summary.num_edges));
  t.row().cell("components").cell(opt_cell(ref.components)).cell(
      static_cast<std::uint64_t>(r.summary.num_components));
  t.row()
      .cell("degree-1 proteins")
      .cell(opt_cell(ref.degree_one_vertices))
      .cell(static_cast<std::uint64_t>(r.summary.degree_one_vertices));
  t.row()
      .cell("max protein degree")
      .cell(opt_cell(ref.max_vertex_degree))
      .cell(static_cast<std::uint64_t>(r.summary.max_vertex_degree));
  t.row().cell("diameter").cell(opt_cell(ref.diameter)).cell(
      static_cast<std::uint64_t>(r.paths.diameter));
  t.row()
      .cell("average path length")
      .cell(opt_cell(ref.average_path))
      .cell(real_cell(r.paths.average_length));
  t.row().cell("power-law gamma").cell(opt_cell(ref.gamma)).cell(
      real_cell(r.degree_fit.gamma));
  t.row().cell("power-law log10(c)").cell(opt_cell(ref.log10_c)).cell(
      real_cell(r.degree_fit.log10_c));
  t.row().cell("power-law R^2").cell(opt_cell(ref.r_squared)).cell(
      real_cell(r.degree_fit.r_squared));
  t.row().cell("maximum core k").cell(opt_cell(ref.max_core)).cell(
      static_cast<std::uint64_t>(r.max_core));
  t.row().cell("core proteins").cell(opt_cell(ref.core_proteins)).cell(
      static_cast<std::uint64_t>(r.core_proteins));
  t.row().cell("core complexes").cell(opt_cell(ref.core_complexes)).cell(
      static_cast<std::uint64_t>(r.core_complexes));
  t.row()
      .cell("min cover size")
      .cell(opt_cell(ref.cover_unit_size))
      .cell(static_cast<std::uint64_t>(r.cover_unit_size));
  t.row()
      .cell("min cover avg degree")
      .cell(opt_cell(ref.cover_unit_degree))
      .cell(real_cell(r.cover_unit_degree, 2));
  t.row()
      .cell("deg^2 cover size")
      .cell(opt_cell(ref.cover_deg2_size))
      .cell(static_cast<std::uint64_t>(r.cover_deg2_size));
  t.row()
      .cell("deg^2 cover avg degree")
      .cell(opt_cell(ref.cover_deg2_degree))
      .cell(real_cell(r.cover_deg2_degree, 2));
  t.row()
      .cell("2-multicover size")
      .cell(opt_cell(ref.multicover_size))
      .cell(static_cast<std::uint64_t>(r.multicover_size));
  t.row()
      .cell("2-multicover avg degree")
      .cell(opt_cell(ref.multicover_degree))
      .cell(real_cell(r.multicover_degree, 2));

  std::ostringstream out;
  out << t.to_string();
  out << "\ncomplex size distribution fits: power R^2 = "
      << real_cell(r.size_fits.power.r_squared) << ", exponential R^2 = "
      << real_cell(r.size_fits.exponential.r_squared)
      << " (both poor, as the paper observes)\n";
  out << "core decomposition time: " << format_duration(r.core_seconds)
      << '\n';
  return out.str();
}

}  // namespace hp::bio
