// Protein naming: a bidirectional registry between protein names and the
// dense vertex ids used by the hypergraph algorithms.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "util/common.hpp"

namespace hp::bio {

/// Bidirectional name <-> id map. Ids are dense and assigned in
/// first-seen order, so the registry doubles as the vertex numbering of
/// the protein-complex hypergraph.
class ProteinRegistry {
 public:
  /// Id for `name`, inserting a fresh one if unseen.
  index_t intern(const std::string& name);

  /// Id for `name`; throws InvalidInputError if absent.
  index_t id_of(const std::string& name) const;

  bool contains(const std::string& name) const {
    return index_.count(name) > 0;
  }

  const std::string& name_of(index_t id) const;

  index_t size() const { return static_cast<index_t>(names_.size()); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, index_t> index_;
};

}  // namespace hp::bio
