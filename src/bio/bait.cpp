#include "bio/bait.hpp"

namespace hp::bio {

BaitSelection select_baits(const hyper::Hypergraph& h, BaitStrategy strategy) {
  BaitSelection selection;
  selection.strategy = strategy;
  switch (strategy) {
    case BaitStrategy::kMinCardinality: {
      const hyper::CoverResult cover =
          hyper::greedy_vertex_cover(h, hyper::unit_weights(h));
      selection.baits = cover.vertices;
      selection.average_degree = cover.average_degree;
      break;
    }
    case BaitStrategy::kDegreeSquared: {
      const hyper::CoverResult cover =
          hyper::greedy_vertex_cover(h, hyper::degree_squared_weights(h));
      selection.baits = cover.vertices;
      selection.average_degree = cover.average_degree;
      break;
    }
    case BaitStrategy::kDoubleCoverage: {
      // Degree^2 weights, like kDegreeSquared: the paper's 2-multicover
      // has average bait degree 1.74, i.e. it too prefers low-degree
      // baits rather than minimizing the bait count.
      const hyper::MulticoverResult cover = hyper::greedy_multicover(
          h, hyper::degree_squared_weights(h), 2);
      selection.baits = cover.vertices;
      selection.average_degree = cover.average_degree;
      selection.excluded_complexes = cover.clamped_edges;
      break;
    }
  }
  return selection;
}

std::vector<std::string> bait_names(const BaitSelection& selection,
                                    const ProteinRegistry& proteins) {
  std::vector<std::string> names;
  names.reserve(selection.baits.size());
  for (index_t v : selection.baits) names.push_back(proteins.name_of(v));
  return names;
}

std::vector<index_t> pulldown_counts(const hyper::Hypergraph& h,
                                     const std::vector<index_t>& baits) {
  std::vector<index_t> counts;
  counts.reserve(baits.size());
  for (index_t v : baits) {
    HP_REQUIRE(v < h.num_vertices(), "pulldown_counts: bait out of range");
    counts.push_back(h.vertex_degree(v));
  }
  return counts;
}

}  // namespace hp::bio
