// Bait-selection pipeline (paper section 4).
//
// Wraps the hypergraph cover algorithms into the domain-level decision:
// which proteins should be TAP-tagged so that every complex is pulled
// down, preferring low-degree baits (they identify their complexes less
// ambiguously) and optionally covering every complex more than once to
// compensate for the experiment's ~70 % reproducibility.
#pragma once

#include <string>
#include <vector>

#include "bio/complex_io.hpp"
#include "core/cover.hpp"
#include "core/multicover.hpp"

namespace hp::bio {

enum class BaitStrategy {
  kMinCardinality,   ///< unit weights (paper: 109 proteins, avg deg 3.7)
  kDegreeSquared,    ///< w = deg^2   (paper: 233 proteins, avg deg 1.14)
  kDoubleCoverage,   ///< 2-multicover, w = deg^2 (paper: 558, avg 1.74)
};

struct BaitSelection {
  BaitStrategy strategy;
  std::vector<index_t> baits;        ///< protein ids
  double average_degree = 0.0;
  /// Complexes that could not meet the requested multiplicity
  /// (singletons under kDoubleCoverage; empty otherwise).
  std::vector<index_t> excluded_complexes;
};

/// Run one strategy on the dataset's hypergraph.
BaitSelection select_baits(const hyper::Hypergraph& h, BaitStrategy strategy);

/// Bait names for reporting.
std::vector<std::string> bait_names(const BaitSelection& selection,
                                    const ProteinRegistry& proteins);

/// How many complexes each bait pulls down (= its degree); the paper
/// reports the distribution for Cellzome's 459 baits (429 pull one
/// complex, 26 two, 4 three).
std::vector<index_t> pulldown_counts(const hyper::Hypergraph& h,
                                     const std::vector<index_t>& baits);

}  // namespace hp::bio
