// Evaluation of core-proteome detection against ground truth.
//
// The Cellzome surrogate plants its dense module explicitly (the first
// `core_proteins` vertex ids and the designated core complexes), which
// real data never offers. That turns the paper's qualitative story --
// "the maximum core identifies the core proteome" -- into a measurable
// retrieval task: how precisely does the computed maximum core recover
// the planted module, and how does the hypergraph core compare with the
// clique-expansion graph core the paper calls error-prone?
#pragma once

#include <vector>

#include "util/common.hpp"

namespace hp::bio {

struct RecoveryStats {
  count_t true_positives = 0;
  count_t false_positives = 0;
  count_t false_negatives = 0;
  double precision = 0.0;  ///< TP / (TP + FP); 1.0 when nothing predicted
  double recall = 0.0;     ///< TP / (TP + FN); 1.0 when nothing planted
  double f1 = 0.0;         ///< harmonic mean (0 when undefined)
  double jaccard = 0.0;    ///< |A ∩ B| / |A ∪ B|
};

/// Compare a predicted id set against the ground-truth set.
RecoveryStats recovery_stats(const std::vector<index_t>& predicted,
                             const std::vector<index_t>& truth);

}  // namespace hp::bio
