// Parser/writer for protein-complex membership tables -- the public-data
// format of the Cellzome/Gavin supplementary material and of MIPS-style
// complex catalogues:
//
//   # comment
//   ComplexName <TAB> Protein1 <TAB> Protein2 <TAB> ...
//
// (whitespace-separated protein lists are also accepted). Proteins are
// interned into a ProteinRegistry in first-seen order; complexes become
// hyperedges in file order.
#pragma once

#include <string>
#include <vector>

#include "bio/protein.hpp"
#include "core/hypergraph.hpp"

namespace hp::bio {

struct ComplexDataset {
  hyper::Hypergraph hypergraph;        ///< proteins = vertices, complexes = edges
  ProteinRegistry proteins;
  std::vector<std::string> complex_names;  ///< per hyperedge id
};

/// Parse from text. Throws hp::ParseError (with a line number) on a line
/// with no proteins or a duplicated complex name.
ComplexDataset parse_complex_table(const std::string& text);

/// Serialize back to the tab-separated format.
std::string format_complex_table(const ComplexDataset& data);

/// File wrappers; throw std::runtime_error on I/O failure.
ComplexDataset load_complex_table(const std::string& path);
void save_complex_table(const ComplexDataset& data, const std::string& path);

}  // namespace hp::bio
