#include "bio/core_recovery.hpp"

#include <algorithm>

namespace hp::bio {

RecoveryStats recovery_stats(const std::vector<index_t>& predicted,
                             const std::vector<index_t>& truth) {
  std::vector<index_t> p = predicted;
  std::vector<index_t> t = truth;
  std::sort(p.begin(), p.end());
  p.erase(std::unique(p.begin(), p.end()), p.end());
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());

  std::vector<index_t> inter;
  std::set_intersection(p.begin(), p.end(), t.begin(), t.end(),
                        std::back_inserter(inter));

  RecoveryStats s;
  s.true_positives = inter.size();
  s.false_positives = p.size() - inter.size();
  s.false_negatives = t.size() - inter.size();
  s.precision = p.empty() ? 1.0
                          : static_cast<double>(s.true_positives) /
                                static_cast<double>(p.size());
  s.recall = t.empty() ? 1.0
                       : static_cast<double>(s.true_positives) /
                             static_cast<double>(t.size());
  s.f1 = (s.precision + s.recall) > 0.0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  const std::size_t union_size = p.size() + t.size() - inter.size();
  s.jaccard = union_size > 0
                  ? static_cast<double>(inter.size()) /
                        static_cast<double>(union_size)
                  : 1.0;
  return s;
}

}  // namespace hp::bio
