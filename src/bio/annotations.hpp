// Per-protein functional annotations: essentiality, homology, and
// known/unknown status.
//
// The paper tests its core-proteome conjecture against the
// Saccharomyces Genome Database (homologs) and the Comprehensive Yeast
// Genome Database (878 essential / 3,158 non-essential genes). Those
// databases are not bundled here, so AnnotationModel *simulates* an
// annotation source whose statistics match the published rates: rates
// inside a designated core set reflect the paper's core observations
// (9/41 unknown, 22/32 of the known essential, 24/41 with homologs) and
// the background reflects genome-wide rates. The enrichment analysis
// then runs on exactly the code path real annotations would use; see
// DESIGN.md for the substitution rationale.
//
// A TSV load/save path is provided so real annotation tables can be
// dropped in:  ProteinName <TAB> essential|nonessential <TAB>
// homolog|nohomolog <TAB> known|unknown
#pragma once

#include <string>
#include <vector>

#include "bio/protein.hpp"
#include "util/rng.hpp"

namespace hp::bio {

struct AnnotationSet {
  std::vector<bool> essential;
  std::vector<bool> homolog;
  std::vector<bool> known;  ///< protein is known / has known function

  index_t size() const { return static_cast<index_t>(essential.size()); }
};

struct AnnotationRates {
  // Background (genome-wide) rates. Essentiality default is the CYGD
  // count the paper quotes: 878 / (878 + 3158).
  double background_essential = 878.0 / 4036.0;
  double background_homolog = 0.35;
  double background_known = 0.70;
  // Rates within the core set, from the paper's 6-core observations.
  double core_unknown = 9.0 / 41.0;              // -> known = 32/41
  double core_essential_given_known = 22.0 / 32.0;
  double core_homolog = 24.0 / 41.0;
};

/// Simulate annotations for `num_proteins` proteins; `core` lists the
/// protein ids belonging to the core proteome (e.g. the maximum core).
AnnotationSet simulate_annotations(index_t num_proteins,
                                   const std::vector<index_t>& core,
                                   const AnnotationRates& rates, Rng& rng);

/// Parse / format the TSV annotation table described above. Proteins
/// missing from the table default to (nonessential, nohomolog, known).
AnnotationSet parse_annotations(const std::string& text,
                                const ProteinRegistry& proteins);
std::string format_annotations(const AnnotationSet& a,
                               const ProteinRegistry& proteins);

}  // namespace hp::bio
