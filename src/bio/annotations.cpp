#include "bio/annotations.hpp"

#include <sstream>

#include "util/stringutil.hpp"

namespace hp::bio {

AnnotationSet simulate_annotations(index_t num_proteins,
                                   const std::vector<index_t>& core,
                                   const AnnotationRates& rates, Rng& rng) {
  AnnotationSet a;
  a.essential.assign(num_proteins, false);
  a.homolog.assign(num_proteins, false);
  a.known.assign(num_proteins, true);

  std::vector<bool> in_core(num_proteins, false);
  for (index_t v : core) {
    HP_REQUIRE(v < num_proteins, "simulate_annotations: core id out of range");
    in_core[v] = true;
  }

  for (index_t v = 0; v < num_proteins; ++v) {
    if (in_core[v]) {
      a.known[v] = !rng.bernoulli(rates.core_unknown);
      a.essential[v] =
          a.known[v] && rng.bernoulli(rates.core_essential_given_known);
      a.homolog[v] = rng.bernoulli(rates.core_homolog);
    } else {
      a.known[v] = rng.bernoulli(rates.background_known);
      a.essential[v] =
          a.known[v] && rng.bernoulli(rates.background_essential);
      a.homolog[v] = rng.bernoulli(rates.background_homolog);
    }
  }
  return a;
}

AnnotationSet parse_annotations(const std::string& text,
                                const ProteinRegistry& proteins) {
  AnnotationSet a;
  a.essential.assign(proteins.size(), false);
  a.homolog.assign(proteins.size(), false);
  a.known.assign(proteins.size(), true);

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body.front() == '#') continue;
    const auto fields = split_whitespace(body);
    if (fields.size() != 4) {
      throw ParseError{"annotations line " + std::to_string(line_no) +
                       ": expected 4 fields"};
    }
    const std::string name{fields[0]};
    if (!proteins.contains(name)) continue;  // annotation for absent protein
    const index_t v = proteins.id_of(name);
    if (fields[1] == "essential") {
      a.essential[v] = true;
    } else if (fields[1] != "nonessential") {
      throw ParseError{"annotations line " + std::to_string(line_no) +
                       ": bad essentiality field"};
    }
    if (fields[2] == "homolog") {
      a.homolog[v] = true;
    } else if (fields[2] != "nohomolog") {
      throw ParseError{"annotations line " + std::to_string(line_no) +
                       ": bad homolog field"};
    }
    if (fields[3] == "unknown") {
      a.known[v] = false;
    } else if (fields[3] != "known") {
      throw ParseError{"annotations line " + std::to_string(line_no) +
                       ": bad known field"};
    }
  }
  return a;
}

std::string format_annotations(const AnnotationSet& a,
                               const ProteinRegistry& proteins) {
  HP_REQUIRE(a.size() == proteins.size(),
             "format_annotations: size mismatch");
  std::ostringstream out;
  out << "# protein annotations\n";
  for (index_t v = 0; v < a.size(); ++v) {
    out << proteins.name_of(v) << '\t'
        << (a.essential[v] ? "essential" : "nonessential") << '\t'
        << (a.homolog[v] ? "homolog" : "nohomolog") << '\t'
        << (a.known[v] ? "known" : "unknown") << '\n';
  }
  return out.str();
}

}  // namespace hp::bio
