// Surrogates for the DIP protein-protein interaction networks the paper
// compares against in section 3 (Nov 2003 snapshots: yeast with 4,746
// proteins whose maximum graph core is a 10-core of 33 proteins, and
// drosophila with ~7,000 proteins and an 8-core of 577 proteins).
//
// Yeast: a Chung-Lu power-law graph calibrated to the DIP density gives
// the deep, small core. Drosophila (the Giot et al. Y2H map) contains a
// large moderately-dense region, modelled as a power-law periphery plus
// an Erdos-Renyi block, which yields the shallow-but-large core.
// Parameters are exposed so studies can move along either axis.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace hp::bio {

struct YeastPpiParams {
  index_t num_proteins = 4746;
  double gamma = 2.5;        ///< degree exponent
  double average_degree = 6.3;
};

/// Yeast DIP surrogate (expected max core ~ 10 with tens of proteins).
graph::Graph yeast_ppi_surrogate(const YeastPpiParams& params, Rng& rng);

struct FlyPpiParams {
  index_t num_proteins = 7000;
  double periphery_gamma = 2.9;
  double periphery_average_degree = 4.0;
  index_t block_offset = 3000;     ///< first protein of the dense block
  index_t block_size = 600;
  double block_average_degree = 12.0;
};

/// Drosophila DIP surrogate (expected max core ~ 8 with hundreds of
/// proteins).
graph::Graph fly_ppi_surrogate(const FlyPpiParams& params, Rng& rng);

}  // namespace hp::bio
