#include "bio/complex_io.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/stringutil.hpp"

namespace hp::bio {

ComplexDataset parse_complex_table(const std::string& text) {
  ComplexDataset data;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::set<std::string> complex_names_seen;
  std::vector<std::vector<index_t>> edges;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body.front() == '#') continue;
    // First field = complex name; rest = members. Prefer tab separation,
    // fall back to whitespace.
    std::vector<std::string_view> fields;
    if (body.find('\t') != std::string_view::npos) {
      for (std::string_view f : split(body, '\t')) {
        const std::string_view t = trim(f);
        if (!t.empty()) fields.push_back(t);
      }
    } else {
      fields = split_whitespace(body);
    }
    if (fields.size() < 2) {
      throw ParseError{"line " + std::to_string(line_no) +
                       ": complex with no proteins"};
    }
    const std::string name{fields[0]};
    if (!complex_names_seen.insert(name).second) {
      throw ParseError{"line " + std::to_string(line_no) +
                       ": duplicate complex name '" + name + "'"};
    }
    data.complex_names.push_back(name);
    std::vector<index_t> members;
    members.reserve(fields.size() - 1);
    for (std::size_t i = 1; i < fields.size(); ++i) {
      members.push_back(data.proteins.intern(std::string{fields[i]}));
    }
    edges.push_back(std::move(members));
  }

  hyper::HypergraphBuilder builder{data.proteins.size()};
  for (const auto& members : edges) builder.add_edge(members);
  data.hypergraph = builder.build();
  return data;
}

std::string format_complex_table(const ComplexDataset& data) {
  HP_REQUIRE(data.complex_names.size() == data.hypergraph.num_edges(),
             "format_complex_table: name/edge count mismatch");
  std::ostringstream out;
  out << "# protein complex membership table (" << data.hypergraph.num_edges()
      << " complexes, " << data.hypergraph.num_vertices() << " proteins)\n";
  for (index_t e = 0; e < data.hypergraph.num_edges(); ++e) {
    out << data.complex_names[e];
    for (index_t v : data.hypergraph.vertices_of(e)) {
      out << '\t' << data.proteins.name_of(v);
    }
    out << '\n';
  }
  return out.str();
}

ComplexDataset load_complex_table(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error{"load_complex_table: cannot open " + path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_complex_table(buffer.str());
}

void save_complex_table(const ComplexDataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error{"save_complex_table: cannot open " + path};
  }
  out << format_complex_table(data);
  if (!out) {
    throw std::runtime_error{"save_complex_table: write failed for " + path};
  }
}

}  // namespace hp::bio
