#include "bio/tap_sim.hpp"

#include <algorithm>

namespace hp::bio {

TapSimResult simulate_tap(const hyper::Hypergraph& h,
                          const std::vector<index_t>& baits,
                          const TapSimParams& params, Rng& rng) {
  HP_REQUIRE(params.success_rate >= 0.0 && params.success_rate <= 1.0,
             "simulate_tap: success_rate out of [0,1]");
  HP_REQUIRE(params.trials > 0, "simulate_tap: trials must be positive");

  TapSimResult result;
  // Baits per complex.
  std::vector<std::vector<index_t>> complex_baits(h.num_edges());
  std::vector<bool> is_bait(h.num_vertices(), false);
  for (index_t b : baits) {
    HP_REQUIRE(b < h.num_vertices(), "simulate_tap: bait out of range");
    is_bait[b] = true;
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    for (index_t v : h.vertices_of(e)) {
      if (is_bait[v]) complex_baits[e].push_back(v);
    }
    if (complex_baits[e].empty()) ++result.uncoverable_complexes;
  }
  const index_t coverable = h.num_edges() - result.uncoverable_complexes;
  if (coverable == 0) return result;

  double sum = 0.0;
  for (int trial = 0; trial < params.trials; ++trial) {
    index_t recovered = 0;
    for (index_t e = 0; e < h.num_edges(); ++e) {
      bool seen = false;
      for (std::size_t i = 0; i < complex_baits[e].size() && !seen; ++i) {
        seen = rng.bernoulli(params.success_rate);
      }
      if (seen) ++recovered;
    }
    const double fraction =
        static_cast<double>(recovered) / static_cast<double>(coverable);
    sum += fraction;
    result.min_recovered_fraction =
        std::min(result.min_recovered_fraction, fraction);
    result.max_recovered_fraction =
        std::max(result.max_recovered_fraction, fraction);
  }
  result.mean_recovered_fraction = sum / params.trials;
  return result;
}

}  // namespace hp::bio
