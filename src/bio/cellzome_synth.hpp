// Calibrated surrogate for the Cellzome (Gavin et al., Nature 2002)
// yeast protein-complex dataset.
//
// The original supplementary membership lists are not redistributable
// here, so we synthesize a hypergraph that matches every marginal the
// paper reports and exercises the same algorithmic behaviour:
//
//   * 1,361 proteins, 232 complexes;
//   * 846 proteins of degree 1; maximum protein degree 21 (named ADH1);
//   * protein degree distribution following P(d) = c d^-gamma with
//     gamma ~ 2.5 (Fig. 1);
//   * complex sizes from 1 (exactly 3 singleton complexes, cf. the
//     multicover experiment) up to ~90 ("a large complex consisting of
//     nearly hundred proteins"), matching the pin total implied by the
//     degree sequence;
//   * a planted dense module of ~41 high-degree proteins concentrated in
//     ~54 complexes so that the maximum hypergraph core lands at ~6 with
//     sizes near the paper's 41 proteins / 54 complexes (the biological
//     reality this mimics: the ribosomal/spliceosomal machineries that
//     form the real 6-core share members across many related complexes,
//     which a pure configuration model would scatter);
//   * remaining memberships wired by a bipartite configuration model.
//
// Deterministic for a given seed. See DESIGN.md section 2 for the full
// substitution rationale.
#pragma once

#include <cstdint>

#include "bio/complex_io.hpp"
#include "util/rng.hpp"

namespace hp::bio {

struct CellzomeParams {
  index_t num_proteins = 1361;
  index_t num_complexes = 232;
  index_t degree_one_proteins = 846;
  index_t max_degree = 21;
  double gamma = 2.528;          ///< degree power-law exponent target
  index_t num_singletons = 3;    ///< single-protein complexes
  index_t max_complex_size = 88;
  index_t core_proteins = 41;    ///< planted core module size
  index_t core_complexes = 54;
  index_t core_memberships = 6;  ///< planted per-protein core degree
  /// Locality of multi-complex proteins: a protein with several residual
  /// memberships places them within a window of this many complex ids
  /// around a random center (0 = pure configuration model). Mimics the
  /// TAP reality that a promiscuous protein shows up in *related*
  /// pulldowns, which creates the complex-complex overlaps that drive
  /// containment cascades during the k-core peel.
  /// Calibrated so the surrogate's maximum core lands on the paper's
  /// 6-core with ~41 proteins while keeping diameter 6.
  index_t locality_window = 3;
  /// Promiscuous proteins (residual degree >= hub_degree_threshold)
  /// draw their locality centers from only `hub_regions` shared anchor
  /// complexes instead of anywhere. This makes hub memberships overlap
  /// each other -- the reason the paper's minimum cover needs 109
  /// proteins even though single hubs belong to up to 21 complexes.
  /// hub_regions = 0 disables the concentration. The defaults are
  /// calibrated jointly with locality_window: at the default seed the
  /// surrogate reproduces the paper's 6-core with 41 proteins, diameter
  /// 6, and average path length ~2.6.
  index_t hub_regions = 12;
  index_t hub_degree_threshold = 2;
  std::uint64_t seed = 20040426; ///< IPPS 2004 vintage
};

/// Generate the surrogate dataset (hypergraph + protein/complex names).
/// The maximum-degree protein is named "ADH1"; the others are
/// "YP0001".. in id order; complexes are "CPLX001"...
ComplexDataset cellzome_surrogate(const CellzomeParams& params = {});

/// Parameters for a surrogate scaled to `target_proteins` vertices.
/// Population counts (complexes, degree-1 proteins, singletons, planted
/// core module, hub anchors) scale linearly from the calibrated
/// 1,361-protein defaults; per-item shape parameters (max degree, max
/// complex size, gamma, locality window) stay fixed so the scaled graph
/// keeps the same local statistics while growing in extent. Intended
/// for throughput benchmarks at 10^5+ proteins; the 1,361-protein
/// default stays the calibrated dataset the golden tests pin down.
CellzomeParams scaled_cellzome_params(index_t target_proteins);

/// The degree sequence the generator targets (descending); exposed for
/// tests. Sums to the pin count of the generated hypergraph's target.
std::vector<index_t> cellzome_degree_sequence(const CellzomeParams& params);

}  // namespace hp::bio
