#include "bio/dip_surrogate.hpp"

#include "graph/graph_generators.hpp"

namespace hp::bio {

graph::Graph yeast_ppi_surrogate(const YeastPpiParams& params, Rng& rng) {
  const auto weights = graph::power_law_weights(
      params.num_proteins, params.gamma, params.average_degree);
  return graph::generate_chung_lu(weights, rng);
}

graph::Graph fly_ppi_surrogate(const FlyPpiParams& params, Rng& rng) {
  HP_REQUIRE(params.block_offset + params.block_size <= params.num_proteins,
             "fly_ppi_surrogate: dense block exceeds protein count");
  graph::GraphBuilder builder{params.num_proteins};

  const auto weights = graph::power_law_weights(
      params.num_proteins, params.periphery_gamma,
      params.periphery_average_degree);
  const graph::Graph periphery = graph::generate_chung_lu(weights, rng);
  for (index_t u = 0; u < periphery.num_vertices(); ++u) {
    for (index_t v : periphery.neighbors(u)) {
      if (u < v) builder.add_edge(u, v);
    }
  }

  const count_t block_edges = static_cast<count_t>(
      params.block_average_degree * params.block_size / 2.0);
  count_t added = 0;
  while (added < block_edges) {
    const index_t u = params.block_offset +
                      static_cast<index_t>(rng.uniform(params.block_size));
    const index_t v = params.block_offset +
                      static_cast<index_t>(rng.uniform(params.block_size));
    if (u == v) continue;
    builder.add_edge(u, v);  // duplicates merge at build()
    ++added;
  }
  return builder.build();
}

}  // namespace hp::bio
