// Complex-catalog comparison.
//
// The paper's bait-selection discussion ends with using "one organism as
// a model to identify the protein complexes in a related organism" --
// which in practice means comparing a predicted complex catalog against
// a reference one (the standard evaluation against MIPS/CYC-style
// curated catalogs). This module implements the classic best-match
// Jaccard protocol: every complex of one catalog is matched to its
// highest-Jaccard counterpart in the other; catalog-level precision and
// recall count complexes whose best match clears a threshold.
#pragma once

#include <vector>

#include "core/hypergraph.hpp"

namespace hp::bio {

struct ComplexMatch {
  index_t counterpart = kInvalidIndex;  ///< best-Jaccard partner (or none)
  double jaccard = 0.0;
};

/// Best-Jaccard match of every hyperedge of `predicted` against
/// `reference`. Both hypergraphs must share the vertex universe (same
/// protein ids). O(sum of pin-degree products) via incidence lists.
std::vector<ComplexMatch> best_matches(const hyper::Hypergraph& predicted,
                                       const hyper::Hypergraph& reference);

struct CatalogComparison {
  /// Complexes of `predicted` whose best match clears the threshold.
  count_t matched_predicted = 0;
  /// Complexes of `reference` recovered by some predicted complex.
  count_t matched_reference = 0;
  double precision = 0.0;  ///< matched_predicted / |predicted|
  double recall = 0.0;     ///< matched_reference / |reference|
  double f1 = 0.0;
  /// Mean best-match Jaccard over predicted complexes.
  double mean_jaccard = 0.0;
};

/// Symmetric catalog evaluation at a Jaccard threshold (0.5 is the
/// field's customary value). Throws if the vertex universes differ.
CatalogComparison compare_catalogs(const hyper::Hypergraph& predicted,
                                   const hyper::Hypergraph& reference,
                                   double jaccard_threshold = 0.5);

}  // namespace hp::bio
