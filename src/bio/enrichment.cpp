#include "bio/enrichment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hp::bio {

namespace {
/// log(n choose k) via lgamma.
double log_choose(count_t n, count_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}
}  // namespace

double hypergeometric_tail(count_t population, count_t successes,
                           count_t draws, count_t observed) {
  HP_REQUIRE(successes <= population,
             "hypergeometric_tail: successes exceed population");
  HP_REQUIRE(draws <= population,
             "hypergeometric_tail: draws exceed population");
  const count_t k_max = std::min(successes, draws);
  if (observed == 0) return 1.0;
  if (observed > k_max) return 0.0;
  const double log_denominator = log_choose(population, draws);
  double tail = 0.0;
  for (count_t k = observed; k <= k_max; ++k) {
    if (draws - k > population - successes) continue;  // infeasible term
    const double log_p = log_choose(successes, k) +
                         log_choose(population - successes, draws - k) -
                         log_denominator;
    tail += std::exp(log_p);
  }
  return std::min(tail, 1.0);
}

EnrichmentResult enrichment(const std::vector<index_t>& set,
                            const std::vector<bool>& flag,
                            const std::string& label) {
  EnrichmentResult r;
  r.label = label;
  r.background_size = flag.size();
  for (bool f : flag) r.background_positive += f ? 1 : 0;
  r.set_size = set.size();
  for (index_t v : set) {
    HP_REQUIRE(v < flag.size(), "enrichment: set id out of range");
    r.set_positive += flag[v] ? 1 : 0;
  }
  r.set_fraction = r.set_size > 0 ? static_cast<double>(r.set_positive) /
                                        static_cast<double>(r.set_size)
                                  : 0.0;
  r.background_fraction =
      r.background_size > 0 ? static_cast<double>(r.background_positive) /
                                  static_cast<double>(r.background_size)
                            : 0.0;
  r.fold_enrichment = r.background_fraction > 0.0
                          ? r.set_fraction / r.background_fraction
                          : 0.0;
  r.p_value = hypergeometric_tail(r.background_size, r.background_positive,
                                  r.set_size, r.set_positive);
  return r;
}

CoreProteomeReport core_proteome_report(const std::vector<index_t>& core,
                                        const AnnotationSet& annotations) {
  CoreProteomeReport report;
  report.core_size = core.size();
  std::vector<index_t> core_known_ids;
  for (index_t v : core) {
    HP_REQUIRE(v < annotations.size(),
               "core_proteome_report: core id out of range");
    if (annotations.known[v]) {
      ++report.core_known;
      core_known_ids.push_back(v);
      if (annotations.essential[v]) ++report.core_known_essential;
    } else {
      ++report.core_unknown;
    }
    if (annotations.homolog[v]) ++report.core_homologs;
  }
  // The paper restricts the essentiality comparison to known proteins;
  // build the restricted flag vector (known proteins only contribute).
  std::vector<bool> essential_among_known(annotations.size(), false);
  for (index_t v = 0; v < annotations.size(); ++v) {
    essential_among_known[v] = annotations.known[v] && annotations.essential[v];
  }
  report.essential_enrichment =
      enrichment(core_known_ids, essential_among_known, "essential");
  report.homolog_enrichment = enrichment(core, annotations.homolog, "homolog");
  return report;
}

}  // namespace hp::bio
