// Monte-Carlo simulator of the TAP (tandem affinity purification)
// pulldown experiment.
//
// The paper motivates multicovers with the Cellzome experiment's ~70 %
// reproducibility: a tagged bait pulls down each complex it belongs to
// only with some probability. This simulator quantifies the reliability
// gain of covering each complex twice: run the experiment with a given
// bait set, where each (bait, complex) pulldown independently succeeds
// with probability `success_rate`, and count the complexes identified at
// least once.
#pragma once

#include <vector>

#include "core/hypergraph.hpp"
#include "util/rng.hpp"

namespace hp::bio {

struct TapSimParams {
  double success_rate = 0.70;  ///< per-pulldown success (Cellzome's 70 %)
  int trials = 200;            ///< Monte-Carlo repetitions
};

struct TapSimResult {
  double mean_recovered_fraction = 0.0;  ///< complexes seen >= 1 time
  double min_recovered_fraction = 1.0;
  double max_recovered_fraction = 0.0;
  /// Complexes with no bait among their members can never be recovered;
  /// they are excluded from the denominator and counted here.
  index_t uncoverable_complexes = 0;
};

/// Simulate `params.trials` repetitions of the experiment with the given
/// bait set. Each bait attempts to pull down every complex it belongs
/// to, succeeding independently with probability success_rate.
TapSimResult simulate_tap(const hyper::Hypergraph& h,
                          const std::vector<index_t>& baits,
                          const TapSimParams& params, Rng& rng);

}  // namespace hp::bio
