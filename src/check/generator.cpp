#include "check/generator.hpp"

#include <algorithm>
#include <vector>

namespace hp::check {

using hyper::Hypergraph;
using hyper::HypergraphBuilder;

namespace {

index_t pick_count(Rng& rng, index_t max) {
  return static_cast<index_t>(rng.uniform(max + 1));
}

/// Edge-size draw honoring the envelope: uniform in
/// [1, min(preferred_max, o.max_edge_size)]. Every shape routes its
/// size choices through this so a caller-shrunk envelope is a hard
/// guarantee, not a suggestion.
index_t pick_size(Rng& rng, const GenOptions& o, index_t preferred_max) {
  const index_t cap =
      std::max<index_t>(1, std::min(preferred_max, o.max_edge_size));
  return 1 + static_cast<index_t>(rng.uniform(cap));
}

Hypergraph uniform_instance(Rng& rng, const GenOptions& o) {
  const index_t nv = pick_count(rng, o.max_vertices);
  HypergraphBuilder builder{nv};
  if (nv == 0) return builder.build();
  const index_t ne = pick_count(rng, o.max_edges);
  std::vector<index_t> members;
  for (index_t e = 0; e < ne; ++e) {
    const index_t size = 1 + static_cast<index_t>(rng.uniform(o.max_edge_size));
    members.clear();
    for (index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<index_t>(rng.uniform(nv)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

Hypergraph cellzome_instance(Rng& rng, const GenOptions& o) {
  // Mirrors the regime of tests/core/test_peel_substrate.cpp: hub
  // vertices joining many complexes, plus verbatim duplicates and
  // prefix sub-complexes (TAP pulldowns).
  const index_t nv = std::min<index_t>(
      8 + pick_count(rng, o.max_vertices > 8 ? o.max_vertices - 8
                                             : index_t{1}),
      std::max<index_t>(o.max_vertices, 1));
  const index_t ne = std::min<index_t>(
      4 + pick_count(rng, o.max_edges > 4 ? o.max_edges - 4 : index_t{1}),
      std::max<index_t>(o.max_edges, 1));
  const index_t num_hubs =
      std::min<index_t>(1 + static_cast<index_t>(rng.uniform(4)), nv);
  HypergraphBuilder builder{nv};
  std::vector<index_t> members;
  std::vector<std::vector<index_t>> committed;
  for (index_t e = 0; e < ne; ++e) {
    const double roll = rng.uniform01();
    if (roll < 0.15 && !committed.empty()) {
      builder.add_edge(committed[rng.uniform(committed.size())]);
      continue;
    }
    if (roll < 0.3 && !committed.empty()) {
      const auto& parent = committed[rng.uniform(committed.size())];
      const std::size_t take = 1 + rng.uniform(parent.size());
      members.assign(parent.begin(),
                     parent.begin() + static_cast<std::ptrdiff_t>(take));
      builder.add_edge(members);
      continue;
    }
    const index_t size = pick_size(rng, o, 7);
    members.clear();
    for (index_t i = 0; i < size; ++i) {
      if (rng.uniform01() < 0.3) {
        members.push_back(static_cast<index_t>(rng.uniform(num_hubs)));
      } else {
        members.push_back(static_cast<index_t>(rng.uniform(nv)));
      }
    }
    builder.add_edge(members);
    committed.emplace_back(members);
  }
  return builder.build();
}

Hypergraph near_clique_instance(Rng& rng, const GenOptions& o) {
  // Few vertices, many edges each covering most of them: every pair of
  // edges overlaps heavily, so the flat overlap rows are dense and the
  // containment test fires constantly.
  const index_t nv = std::min<index_t>(
      3 + static_cast<index_t>(rng.uniform(8)),
      std::max<index_t>(o.max_vertices, 1));
  const index_t ne = std::min<index_t>(
      4 + pick_count(rng, o.max_edges > 4 ? o.max_edges - 4 : index_t{1}),
      std::max<index_t>(o.max_edges, 1));
  const index_t size_cap =
      std::max<index_t>(1, std::min(nv, o.max_edge_size));
  HypergraphBuilder builder{nv};
  std::vector<index_t> members;
  for (index_t e = 0; e < ne; ++e) {
    members.clear();
    for (index_t v = 0; v < nv; ++v) {
      if (static_cast<index_t>(members.size()) == size_cap) break;
      if (rng.uniform01() < 0.8) members.push_back(v);
    }
    if (members.empty()) {
      members.push_back(static_cast<index_t>(rng.uniform(nv)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

Hypergraph nested_chain_instance(Rng& rng, const GenOptions& o) {
  // Edges are prefixes of one shuffled vertex chain: edge i is strictly
  // contained in edge i+1, so reduction must delete all but the last
  // and the peel cascades through the whole chain.
  const index_t nv = std::min<index_t>(
      2 + pick_count(rng, o.max_vertices > 2 ? o.max_vertices - 2
                                             : index_t{1}),
      std::max<index_t>(o.max_vertices, 1));
  std::vector<index_t> chain(nv);
  for (index_t v = 0; v < nv; ++v) chain[v] = v;
  rng.shuffle(chain);
  const index_t depth_cap = std::max<index_t>(
      1, std::min({nv, index_t{12}, o.max_edge_size, o.max_edges}));
  const index_t depth = 1 + pick_count(rng, depth_cap - 1);
  HypergraphBuilder builder{nv};
  for (index_t take = 1; take <= depth; ++take) {
    builder.add_edge(std::span<const index_t>{chain.data(), take});
  }
  // A few extra random edges so the chain is not the whole instance.
  std::vector<index_t> members;
  const index_t extra_cap =
      o.max_edges > depth ? o.max_edges - depth : index_t{0};
  const index_t extra = pick_count(rng, std::min<index_t>(5, extra_cap));
  for (index_t e = 0; e < extra; ++e) {
    const index_t size = pick_size(rng, o, 4);
    members.clear();
    for (index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<index_t>(rng.uniform(nv)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

Hypergraph duplicate_heavy_instance(Rng& rng, const GenOptions& o) {
  // A handful of distinct edges, each repeated many times: stresses the
  // lowest-id-representative rule of reduction and edge-core stamping.
  const index_t nv = std::min<index_t>(
      4 + static_cast<index_t>(rng.uniform(12)),
      std::max<index_t>(o.max_vertices, 1));
  const index_t distinct = std::min<index_t>(
      1 + static_cast<index_t>(rng.uniform(5)),
      std::max<index_t>(o.max_edges, 1));
  HypergraphBuilder builder{nv};
  std::vector<std::vector<index_t>> originals;
  std::vector<index_t> members;
  for (index_t d = 0; d < distinct; ++d) {
    const index_t size = pick_size(rng, o, 5);
    members.clear();
    for (index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<index_t>(rng.uniform(nv)));
    }
    originals.push_back(members);
  }
  const index_t ne = distinct + pick_count(rng, o.max_edges > distinct
                                                    ? o.max_edges - distinct
                                                    : index_t{0});
  for (index_t e = 0; e < ne; ++e) {
    builder.add_edge(originals[e < distinct ? e : rng.uniform(distinct)]);
  }
  return builder.build();
}

Hypergraph power_law_instance(Rng& rng, const GenOptions& o) {
  // Zipf member choice concentrates degree on low-id vertices, the
  // regime of the paper's Fig. 1 (gamma ~ 2.5, ADH1-style hubs).
  const index_t nv = std::min<index_t>(
      6 + pick_count(rng, o.max_vertices > 6 ? o.max_vertices - 6
                                             : index_t{1}),
      std::max<index_t>(o.max_vertices, 1));
  const index_t ne = pick_count(rng, o.max_edges);
  HypergraphBuilder builder{nv};
  std::vector<index_t> members;
  for (index_t e = 0; e < ne; ++e) {
    const index_t size = 1 + static_cast<index_t>(rng.uniform(o.max_edge_size));
    members.clear();
    for (index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<index_t>(rng.zipf(nv, 2.5) - 1));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

Hypergraph singletons_instance(Rng& rng, const GenOptions& o) {
  // Size-1 edges (complexes of one protein -- the paper's multicover
  // exclusion case) plus deliberately isolated vertices.
  const index_t nv = std::min<index_t>(
      2 + pick_count(rng, o.max_vertices > 2 ? o.max_vertices - 2
                                             : index_t{1}),
      std::max<index_t>(o.max_vertices, 1));
  const index_t ne = pick_count(rng, o.max_edges);
  HypergraphBuilder builder{nv};
  std::vector<index_t> members;
  for (index_t e = 0; e < ne; ++e) {
    // Draw from the lower half so the upper half stays mostly isolated.
    const index_t span = std::max<index_t>(1, nv / 2);
    if (rng.uniform01() < 0.6) {
      builder.add_edge({static_cast<index_t>(rng.uniform(span))});
      continue;
    }
    const index_t size = std::min<index_t>(
        2 + static_cast<index_t>(rng.uniform(3)),
        std::max<index_t>(o.max_edge_size, 1));
    members.clear();
    for (index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<index_t>(rng.uniform(span)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

Hypergraph sparse_instance(Rng& rng, const GenOptions& o) {
  // Far more vertices than pins: most of the instance is isolated
  // vertices, which exercises the dual's vanishing-vertex rule and the
  // component / histogram zero paths.
  const index_t nv = std::min<index_t>(
      8 + pick_count(rng, o.max_vertices > 8 ? o.max_vertices - 8
                                             : index_t{1}),
      std::max<index_t>(o.max_vertices, 1));
  const index_t ne = std::min<index_t>(static_cast<index_t>(rng.uniform(4)),
                                       o.max_edges);
  HypergraphBuilder builder{nv};
  std::vector<index_t> members;
  for (index_t e = 0; e < ne; ++e) {
    const index_t size = pick_size(rng, o, 3);
    members.clear();
    for (index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<index_t>(rng.uniform(nv)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

Hypergraph duplicate_chain_instance(Rng& rng, const GenOptions& o) {
  // Worst case for the reduction fixpoint: a nested prefix chain where
  // every prefix is additionally repeated verbatim several times, so
  // almost every edge is non-maximal and the doomed set is nearly |F|.
  // A fixpoint that re-derives its candidates by rescanning all live
  // edges goes quadratic here; the neighborhood-seeded one stays linear
  // in the doomed edges' incidence. Also leans hard on the
  // lowest-id-representative rule across duplicate classes.
  const index_t nv = std::min<index_t>(
      2 + pick_count(rng, o.max_vertices > 2 ? o.max_vertices - 2
                                             : index_t{1}),
      std::max<index_t>(o.max_vertices, 1));
  std::vector<index_t> chain(nv);
  for (index_t v = 0; v < nv; ++v) chain[v] = v;
  rng.shuffle(chain);
  const index_t depth_cap = std::max<index_t>(
      1, std::min({nv, index_t{8}, o.max_edge_size, o.max_edges}));
  const index_t depth = 1 + pick_count(rng, depth_cap - 1);
  HypergraphBuilder builder{nv};
  index_t budget = std::max<index_t>(o.max_edges, 1);
  for (index_t take = 1; take <= depth && budget > 0; ++take) {
    const index_t copies = std::min<index_t>(
        1 + static_cast<index_t>(rng.uniform(4)), budget);
    for (index_t c = 0; c < copies; ++c) {
      builder.add_edge(std::span<const index_t>{chain.data(), take});
    }
    budget -= copies;
  }
  return builder.build();
}

}  // namespace

Hypergraph generate_shape(Shape shape, Rng& rng, const GenOptions& options) {
  switch (shape) {
    case Shape::kUniform:
      return uniform_instance(rng, options);
    case Shape::kCellzome:
      return cellzome_instance(rng, options);
    case Shape::kNearClique:
      return near_clique_instance(rng, options);
    case Shape::kNestedChain:
      return nested_chain_instance(rng, options);
    case Shape::kDuplicateHeavy:
      return duplicate_heavy_instance(rng, options);
    case Shape::kPowerLaw:
      return power_law_instance(rng, options);
    case Shape::kSingletons:
      return singletons_instance(rng, options);
    case Shape::kSparse:
      return sparse_instance(rng, options);
    case Shape::kDuplicateChain:
      return duplicate_chain_instance(rng, options);
  }
  return Hypergraph{};
}

Shape shape_of_seed(std::uint64_t seed) {
  return static_cast<Shape>(seed % kNumShapes);
}

const char* shape_name(Shape shape) {
  switch (shape) {
    case Shape::kUniform:
      return "uniform";
    case Shape::kCellzome:
      return "cellzome";
    case Shape::kNearClique:
      return "near_clique";
    case Shape::kNestedChain:
      return "nested_chain";
    case Shape::kDuplicateHeavy:
      return "duplicate_heavy";
    case Shape::kPowerLaw:
      return "power_law";
    case Shape::kSingletons:
      return "singletons";
    case Shape::kSparse:
      return "sparse";
    case Shape::kDuplicateChain:
      return "duplicate_chain";
  }
  return "unknown";
}

Hypergraph generate(std::uint64_t seed, const GenOptions& options) {
  Rng rng{seed * 0x9e3779b97f4a7c15ULL + 1};
  // Degenerate instances at a fixed small rate, independent of shape:
  // the empty hypergraph and the edgeless-with-vertices hypergraph are
  // the classic "nobody tested this" inputs.
  const double roll = rng.uniform01();
  if (roll < 0.02) return HypergraphBuilder{0}.build();
  if (roll < 0.04) {
    return HypergraphBuilder{1 + static_cast<index_t>(rng.uniform(8))}.build();
  }
  return generate_shape(shape_of_seed(seed), rng, options);
}

std::string mutate_text(Rng& rng, std::string text, int edits) {
  for (int i = 0; i < edits; ++i) {
    if (text.empty()) {
      text += static_cast<char>(32 + rng.uniform(95));
      continue;
    }
    const std::size_t pos = rng.pick(text.size());
    switch (rng.uniform(5)) {
      case 0:  // overwrite with a printable character
        text[pos] = static_cast<char>(32 + rng.uniform(95));
        break;
      case 1:  // delete a character
        text.erase(pos, 1);
        break;
      case 2:  // insert a digit (numeric splice: the interesting case
               // for count/id fields)
        text.insert(pos, 1, static_cast<char>('0' + rng.uniform(10)));
        break;
      case 3: {  // duplicate a whole line
        const std::size_t line_start = text.rfind('\n', pos);
        const std::size_t begin =
            line_start == std::string::npos ? 0 : line_start + 1;
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos) end = text.size();
        text.insert(begin, text.substr(begin, end - begin) + "\n");
        break;
      }
      default: {  // drop a whole line
        const std::size_t line_start = text.rfind('\n', pos);
        const std::size_t begin =
            line_start == std::string::npos ? 0 : line_start + 1;
        std::size_t end = text.find('\n', pos);
        end = end == std::string::npos ? text.size() : end + 1;
        text.erase(begin, end - begin);
        break;
      }
    }
  }
  return text;
}

std::string mutate_bytes(Rng& rng, std::string bytes, int edits) {
  for (int i = 0; i < edits; ++i) {
    if (bytes.empty()) {
      bytes += static_cast<char>(rng.uniform(256));
      continue;
    }
    const std::size_t pos = rng.pick(bytes.size());
    switch (rng.uniform(4)) {
      case 0:  // overwrite with an arbitrary byte
        bytes[pos] = static_cast<char>(rng.uniform(256));
        break;
      case 1:  // flip one bit
        bytes[pos] = static_cast<char>(
            static_cast<unsigned char>(bytes[pos]) ^ (1u << rng.uniform(8)));
        break;
      case 2:  // erase a short range
        bytes.erase(pos, 1 + rng.pick(4));
        break;
      default:  // duplicate a short range
        bytes.insert(pos, bytes.substr(pos, 1 + rng.pick(4)));
        break;
    }
  }
  return bytes;
}

}  // namespace hp::check
