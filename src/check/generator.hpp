// Seeded adversarial hypergraph generator for the differential-fuzzing
// harness (hp_fuzz).
//
// The goal is not realism but coverage of the structural regimes where
// the peeling substrate, the loaders, and the projections have distinct
// code paths: duplicate and nested hyperedges (containment cascades),
// empty-ish instances (0 vertices, 0 edges, all-isolated), singleton
// edges, near-clique overlap (dense FlatOverlapTracker rows), power-law
// degree mixes (hub vertices), and Cellzome-style pulldown structure.
// Every instance is a deterministic function of a 64-bit seed, so a
// failing seed printed by hp_fuzz is a complete reproducer.
//
// The byte/text mutators produce structured corruptions of serialized
// files for the loader robustness oracle (parse-or-throw, never crash).
#pragma once

#include <cstdint>
#include <string>

#include "core/hypergraph.hpp"
#include "util/rng.hpp"

namespace hp::check {

/// Structural regimes the generator cycles through. Exposed so tests
/// can pin per-shape properties (kNestedChain really nests, ...).
enum class Shape {
  kUniform,         ///< uniform members, uniform sizes
  kCellzome,        ///< hubs + duplicated/nested pulldowns
  kNearClique,      ///< few vertices, many large overlapping edges
  kNestedChain,     ///< every edge a prefix of the next (max cascades)
  kDuplicateHeavy,  ///< few distinct edges, repeated many times
  kPowerLaw,        ///< zipf member choice: heavy-degree hubs
  kSingletons,      ///< size-1 edges and isolated vertices
  kSparse,          ///< |F| << |V|: mostly isolated vertices
  kDuplicateChain,  ///< long runs of duplicates of nested prefixes --
                    ///< the adversarial regime for the reduction
                    ///< fixpoint (quadratic if it rescans all edges)
};

inline constexpr int kNumShapes = 9;

/// Size envelope for generated instances. The defaults keep the
/// O(|F|^2) naive oracle affordable at thousands of cases per second.
struct GenOptions {
  index_t max_vertices = 48;
  index_t max_edges = 56;
  index_t max_edge_size = 9;
};

/// Instance for `shape` drawn from `rng`.
hyper::Hypergraph generate_shape(Shape shape, Rng& rng,
                                 const GenOptions& options = {});

/// Deterministic instance for a seed: the shape is derived from the
/// seed, so a seed range sweeps all regimes. Includes empty and
/// near-empty instances at a small rate.
hyper::Hypergraph generate(std::uint64_t seed, const GenOptions& options = {});

/// The shape `generate(seed)` uses (for reporting).
Shape shape_of_seed(std::uint64_t seed);
const char* shape_name(Shape shape);

/// Textual corruption: overwrite/delete/insert printable characters,
/// duplicate or drop whole lines, splice digits. `edits` rounds.
std::string mutate_text(Rng& rng, std::string text, int edits);

/// Binary corruption: overwrite random bytes (any value), erase or
/// duplicate short ranges, flip individual bits.
std::string mutate_bytes(Rng& rng, std::string bytes, int edits);

}  // namespace hp::check
