#include "check/shrink.hpp"

#include <algorithm>
#include <vector>

namespace hp::check {

using hyper::Hypergraph;
using hyper::HypergraphBuilder;

namespace {

/// Mutable edge-list view of an instance; cheaper to slice than CSR.
struct Rep {
  index_t num_vertices = 0;
  std::vector<std::vector<index_t>> edges;
};

Rep to_rep(const Hypergraph& h) {
  Rep rep;
  rep.num_vertices = h.num_vertices();
  rep.edges.reserve(h.num_edges());
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const auto members = h.vertices_of(e);
    rep.edges.emplace_back(members.begin(), members.end());
  }
  return rep;
}

Hypergraph to_hypergraph(const Rep& rep) {
  HypergraphBuilder builder{rep.num_vertices};
  for (const auto& members : rep.edges) {
    if (!members.empty()) builder.add_edge(members);
  }
  return builder.build();
}

/// Candidate acceptance: keep `candidate` if the failure survives.
struct Search {
  const FailurePredicate& still_fails;
  const ShrinkOptions& options;
  ShrinkStats stats;

  bool budget_left() const {
    return stats.predicate_calls < options.max_predicate_calls;
  }

  bool accept(Rep& current, Rep candidate) {
    if (!budget_left()) return false;
    ++stats.predicate_calls;
    if (!still_fails(to_hypergraph(candidate))) return false;
    current = std::move(candidate);
    return true;
  }
};

/// Remove [begin, begin+len) of `edges`; ddmin-style chunk pass.
bool edge_removal_pass(Search& search, Rep& rep) {
  bool progress = false;
  for (std::size_t chunk = std::max<std::size_t>(rep.edges.size() / 2, 1);
       chunk >= 1; chunk /= 2) {
    std::size_t i = 0;
    while (i < rep.edges.size() && search.budget_left()) {
      Rep candidate = rep;
      const std::size_t len = std::min(chunk, candidate.edges.size() - i);
      candidate.edges.erase(
          candidate.edges.begin() + static_cast<std::ptrdiff_t>(i),
          candidate.edges.begin() + static_cast<std::ptrdiff_t>(i + len));
      if (search.accept(rep, std::move(candidate))) {
        progress = true;  // same i now names the next chunk
      } else {
        i += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return progress;
}

/// Shrink each edge's member list, never below one member.
bool member_removal_pass(Search& search, Rep& rep) {
  bool progress = false;
  for (std::size_t e = 0; e < rep.edges.size(); ++e) {
    for (std::size_t chunk =
             std::max<std::size_t>(rep.edges[e].size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      std::size_t i = 0;
      while (i < rep.edges[e].size() && rep.edges[e].size() > 1 &&
             search.budget_left()) {
        Rep candidate = rep;
        auto& members = candidate.edges[e];
        const std::size_t len =
            std::min({chunk, members.size() - i, members.size() - 1});
        if (len == 0) break;
        members.erase(
            members.begin() + static_cast<std::ptrdiff_t>(i),
            members.begin() + static_cast<std::ptrdiff_t>(i + len));
        if (search.accept(rep, std::move(candidate))) {
          progress = true;
        } else {
          i += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return progress;
}

/// Renumber referenced vertices densely and drop the rest.
bool compaction_pass(Search& search, Rep& rep) {
  std::vector<index_t> remap(rep.num_vertices, kInvalidIndex);
  index_t next = 0;
  for (const auto& members : rep.edges) {
    for (index_t v : members) {
      if (remap[v] == kInvalidIndex) remap[v] = next++;
    }
  }
  if (next == rep.num_vertices) return false;  // nothing to drop
  Rep candidate;
  candidate.num_vertices = next;
  candidate.edges = rep.edges;
  for (auto& members : candidate.edges) {
    for (index_t& v : members) v = remap[v];
  }
  return search.accept(rep, std::move(candidate));
}

}  // namespace

Hypergraph shrink(const Hypergraph& h, const FailurePredicate& still_fails,
                  const ShrinkOptions& options, ShrinkStats* stats) {
  Search search{still_fails, options, {}};
  Rep rep = to_rep(h);
  bool progress = true;
  while (progress && search.budget_left()) {
    ++search.stats.passes;
    progress = false;
    progress |= edge_removal_pass(search, rep);
    progress |= member_removal_pass(search, rep);
    progress |= compaction_pass(search, rep);
  }
  if (stats != nullptr) *stats = search.stats;
  return to_hypergraph(rep);
}

}  // namespace hp::check
