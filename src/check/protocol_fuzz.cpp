#include "check/protocol_fuzz.hpp"

#include <optional>

#include "check/generator.hpp"
#include "serve/protocol.hpp"
#include "util/common.hpp"

namespace hp::check {

namespace proto = hp::serve::proto;

namespace {

void fail(std::vector<CheckFailure>& failures, const std::string& detail) {
  failures.push_back(CheckFailure{"protocol", detail});
}

/// Clip a frame for a failure message.
std::string excerpt(const std::string& frame) {
  if (frame.size() <= 96) return frame;
  return frame.substr(0, 96) + "...(" + std::to_string(frame.size()) +
         " bytes)";
}

std::string random_name(Rng& rng, std::size_t max_len) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789_-";
  const std::size_t len = 1 + rng.pick(max_len);
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.pick(sizeof kAlphabet - 1)];
  }
  return out;
}

/// Text that survives a JSON round-trip exactly: printable ASCII plus
/// the named escapes the reader decodes. Control characters outside
/// this set are escaped as \u00XX, which the minimal reader passes
/// through verbatim rather than decoding -- correct JSON, but not an
/// identity round-trip, so the generator avoids them.
std::string random_text(Rng& rng, std::size_t max_len) {
  static const char kEscapes[] = "\n\t\r\b\f\"\\";
  std::string out;
  const std::size_t len = rng.pick(max_len + 1);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (rng.bernoulli(0.08)) {
      out += kEscapes[rng.pick(sizeof kEscapes - 1)];
    } else {
      out += static_cast<char>(0x20 + rng.pick(0x7f - 0x20));
    }
  }
  return out;
}

proto::Request random_request(Rng& rng) {
  proto::Request request;
  if (rng.bernoulli(0.7)) request.id = rng.uniform(proto::kMaxIntegerField);
  request.command = random_name(rng, proto::kMaxCommandLength);
  if (rng.bernoulli(0.8)) {
    // Paths may hold anything except newlines (the frame delimiter);
    // parse_request rejects decoded newlines outright.
    std::string path = random_text(rng, 64);
    for (char& c : path) {
      if (c == '\n' || c == '\r') c = '_';
    }
    request.path = path;
  }
  const std::size_t args = rng.pick(5);
  for (std::size_t i = 0; i < args; ++i) {
    std::string key;
    do {
      key = random_name(rng, proto::kMaxArgKeyLength);
    } while ([&] {
      for (const auto& [existing, value] : request.args) {
        if (existing == key) return true;
      }
      return false;
    }());
    request.args.emplace_back(key, random_text(rng, 32));
  }
  if (rng.bernoulli(0.4)) {
    request.timeout_ms = rng.uniform(1u << 20);
  }
  return request;
}

proto::Response random_response(Rng& rng) {
  proto::Response response;
  if (rng.bernoulli(0.7)) response.id = rng.uniform(proto::kMaxIntegerField);
  response.ok = rng.bernoulli(0.7);
  if (response.ok) {
    response.output = random_text(rng, 256);
    if (rng.bernoulli(0.5)) {
      response.cache = rng.bernoulli(0.5) ? "hit" : "miss";
    }
  } else {
    response.error = random_text(rng, 64);
    if (response.error.empty()) response.error = "e";
  }
  response.micros = rng.uniform(proto::kMaxIntegerField);
  return response;
}

bool requests_equal(const proto::Request& a, const proto::Request& b) {
  return a.id == b.id && a.command == b.command && a.path == b.path &&
         a.args == b.args && a.timeout_ms == b.timeout_ms;
}

bool responses_equal(const proto::Response& a, const proto::Response& b) {
  return a.id == b.id && a.ok == b.ok && a.output == b.output &&
         a.error == b.error && a.cache == b.cache && a.micros == b.micros;
}

enum class Outcome { kParsed, kRejected, kBadException };

template <typename Parse>
Outcome try_parse(Parse&& parse, const std::string& frame,
                  std::string& error_out) {
  try {
    parse(frame);
    return Outcome::kParsed;
  } catch (const ParseError&) {
    return Outcome::kRejected;  // the contract
  } catch (const std::exception& e) {
    error_out = e.what();
    return Outcome::kBadException;
  }
}

/// Frames that must be rejected no matter what: anything a validating
/// parser could accept here would be a hole in the trust boundary.
std::vector<std::string> hostile_request_frames(Rng& rng) {
  std::vector<std::string> frames = {
      "",
      "   ",
      "null",
      "true",
      "42",
      "\"cmd\"",
      "[]",
      "[{\"cmd\": \"stats\"}]",
      "{",
      "{}",
      "{\"cmd\": \"\"}",
      "{\"cmd\": 3}",
      "{\"cmd\": null}",
      "{\"cmd\": \"STATS\"}",               // uppercase outside [a-z0-9_-]
      "{\"cmd\": \"st ats\"}",              // embedded space
      "{\"cmd\": \"stats\", \"cmd\": \"core\"}",  // duplicate key
      "{\"cmd\": \"stats\", \"bogus\": 1}",       // unknown key
      "{\"cmd\": \"stats\", \"id\": -1}",
      "{\"cmd\": \"stats\", \"id\": 1.5}",
      "{\"cmd\": \"stats\", \"id\": 1e300}",
      "{\"cmd\": \"stats\", \"id\": \"7\"}",
      "{\"cmd\": \"stats\", \"timeout_ms\": true}",
      "{\"cmd\": \"stats\", \"args\": []}",
      "{\"cmd\": \"stats\", \"args\": {\"\": 1}}",
      "{\"cmd\": \"stats\", \"args\": {\"k\": 1.5}}",
      "{\"cmd\": \"stats\", \"args\": {\"k\": null}}",
      "{\"cmd\": \"stats\", \"args\": {\"k\": {}}}",
      "{\"cmd\": \"stats\", \"args\": {\"k!\": 1}}",
      "{\"cmd\": \"stats\", \"path\": 7}",
      "{\"cmd\": \"stats\",",               // truncated object
      "{\"cmd\": \"stats\"} trailing",      // trailing garbage
      std::string{"{\"cmd\": \"stats\", \"path\": \"a"} +
          std::string(1, '\0') + "b\"}",    // raw NUL inside the frame
  };

  // Deep nesting: the JSON reader's 256-level cap must convert stack
  // exhaustion into ParseError.
  std::string deep = "{\"args\": ";
  deep.append(4096, '[');
  frames.push_back(deep);
  std::string deep_closed = "{\"cmd\": \"a\", \"args\": ";
  deep_closed.append(500, '[');
  deep_closed.append(500, ']');
  deep_closed += "}";
  frames.push_back(deep_closed);

  // Over-long fields: command/key/value/path one byte past the cap.
  frames.push_back("{\"cmd\": \"" +
                   std::string(proto::kMaxCommandLength + 1, 'a') + "\"}");
  frames.push_back("{\"cmd\": \"a\", \"path\": \"" +
                   std::string(proto::kMaxPathLength + 1, 'p') + "\"}");
  frames.push_back("{\"cmd\": \"a\", \"args\": {\"" +
                   std::string(proto::kMaxArgKeyLength + 1, 'k') +
                   "\": 1}}");

  // Too many args keys.
  std::string many = "{\"cmd\": \"a\", \"args\": {";
  for (std::size_t i = 0; i <= proto::kMaxArgs; ++i) {
    if (i > 0) many += ", ";
    many += "\"k" + std::to_string(i) + "\": 1";
  }
  many += "}}";
  frames.push_back(many);

  // An oversized frame (cap + 1 bytes of valid-looking JSON).
  std::string oversized = "{\"cmd\": \"a\", \"path\": \"";
  oversized.append(proto::kMaxFrameBytes - oversized.size(), 'x');
  oversized += "\"}";
  frames.push_back(oversized);

  // A random mid-frame raw newline (the framing delimiter).
  std::string newline_frame = "{\"cmd\": \"stats\"}";
  newline_frame.insert(rng.pick(newline_frame.size()), 1, '\n');
  frames.push_back(newline_frame);

  return frames;
}

}  // namespace

std::string random_request_frame(Rng& rng) {
  return proto::format_request(random_request(rng));
}

std::string random_response_frame(Rng& rng) {
  return proto::format_response(random_response(rng));
}

std::vector<CheckFailure> check_protocol(Rng& rng, int trials) {
  std::vector<CheckFailure> failures;
  std::string error;

  // 1. Known-hostile frames: every one must raise ParseError.
  for (const std::string& frame : hostile_request_frames(rng)) {
    switch (try_parse([](const std::string& f) { proto::parse_request(f); },
                      frame, error)) {
      case Outcome::kParsed:
        fail(failures, "parse_request accepted hostile frame: " +
                           excerpt(frame));
        break;
      case Outcome::kBadException:
        fail(failures, "parse_request threw a non-ParseError (" + error +
                           ") on: " + excerpt(frame));
        break;
      case Outcome::kRejected:
        break;
    }
  }
  // Response-side spot checks of response-only rules.
  const std::vector<std::string> hostile_responses = {
      "{\"ok\": true, \"error\": \"boom\"}",  // ok with error text
      "{\"ok\": false}",                      // failure without error
      "{\"id\": 1}",                          // missing ok
      "{\"ok\": \"true\"}",
      "{\"ok\": true, \"micros\": -4}",
      "{\"ok\": true, \"cache\": \"" +
          std::string(proto::kMaxCommandLength + 1, 'h') + "\"}",
  };
  for (const std::string& frame : hostile_responses) {
    switch (try_parse([](const std::string& f) { proto::parse_response(f); },
                      frame, error)) {
      case Outcome::kParsed:
        fail(failures, "parse_response accepted: " + frame);
        break;
      case Outcome::kBadException:
        fail(failures, "parse_response threw a non-ParseError (" + error +
                           ") on: " + frame);
        break;
      case Outcome::kRejected:
        break;
    }
  }

  for (int trial = 0; trial < trials; ++trial) {
    // 2. Round-trip identity on valid frames.
    const proto::Request request = random_request(rng);
    try {
      const proto::Request reparsed =
          proto::parse_request(proto::format_request(request));
      if (!requests_equal(request, reparsed)) {
        fail(failures, "request round-trip changed the payload: " +
                           excerpt(proto::format_request(request)));
      }
    } catch (const std::exception& e) {
      fail(failures, std::string{"valid request failed to round-trip: "} +
                         e.what());
    }
    const proto::Response response = random_response(rng);
    try {
      const proto::Response reparsed =
          proto::parse_response(proto::format_response(response));
      if (!responses_equal(response, reparsed)) {
        fail(failures, "response round-trip changed the payload: " +
                           excerpt(proto::format_response(response)));
      }
    } catch (const std::exception& e) {
      fail(failures, std::string{"valid response failed to round-trip: "} +
                         e.what());
    }

    // 3. Structured corruption: parse-or-throw, and anything accepted
    // must itself re-serialize and re-parse to the same value (the
    // parser may only accept *valid* data).
    const std::string corrupted = mutate_text(
        rng, proto::format_request(random_request(rng)),
        1 + static_cast<int>(rng.uniform(6)));
    std::optional<proto::Request> accepted;
    try {
      accepted = proto::parse_request(corrupted);
    } catch (const ParseError&) {
    } catch (const std::exception& e) {
      fail(failures, std::string{"corrupted request raised non-ParseError ("} +
                         e.what() + "): " + excerpt(corrupted));
    }
    if (accepted.has_value()) {
      try {
        const proto::Request again =
            proto::parse_request(proto::format_request(*accepted));
        if (!requests_equal(*accepted, again)) {
          fail(failures,
               "accepted-after-corruption request is not stable: " +
                   excerpt(corrupted));
        }
      } catch (const std::exception& e) {
        fail(failures,
             std::string{"accepted-after-corruption request does not "
                         "re-serialize: "} +
                 e.what());
      }
    }

    const std::string corrupted_response = mutate_text(
        rng, proto::format_response(random_response(rng)),
        1 + static_cast<int>(rng.uniform(6)));
    try {
      (void)proto::parse_response(corrupted_response);
    } catch (const ParseError&) {
    } catch (const std::exception& e) {
      fail(failures,
           std::string{"corrupted response raised non-ParseError ("} +
               e.what() + "): " + excerpt(corrupted_response));
    }
  }
  return failures;
}

}  // namespace hp::check
