// Differential and algebraic oracles for the fuzzing harness.
//
// Each oracle takes one hypergraph instance and checks a property that
// must hold on EVERY input, not just the Cellzome dataset:
//
//   * core agreement  -- the overlap peel (kcore), the set-comparison
//     reference (kcore_naive) and the bulk-synchronous parallel peel
//     must produce identical vertex core numbers, level sizes and
//     maximum core; every extracted k-core must satisfy the paper's
//     core conditions (reduced + min degree k).
//   * generalized core -- the kNeighborhood measure peel must equal the
//     classic graph k-core of the clique expansion (they are the same
//     algorithm on the same residual degrees); kDegree values are
//     bounded by intact degrees.
//   * reduce          -- idempotent, output is reduced, and the
//     surviving-edge count matches the decomposition's level-0 residual.
//   * dual            -- dual(dual(H)) is H with isolated vertices
//     removed (duality is an involution up to degree-0 vertices).
//   * projections     -- clique/star/bipartite/intersection expansions
//     are mutually consistent and consistent with the overlap table.
//   * components/paths -- component labels respect incidence; the exact
//     path summary matches a per-source BFS recomputation.
//   * covers          -- the greedy multicover output is feasible.
//   * context         -- AnalysisContext-cached artifacts are identical
//     to cold computations and stable across repeated access.
//   * mutation        -- the incremental pipeline (core/mutate/) stays
//     bit-identical to from-scratch rebuilds across a random mutation
//     trace (see check/mutation.hpp; failing traces are ddmin-shrunk).
//   * round-trips     -- text/hMETIS/binary/MatrixMarket serialization
//     is lossless; Pajek export has the declared line structure.
//   * mutated loads   -- corrupted serializations either raise
//     ParseError/InvalidInputError or parse into a structurally valid
//     hypergraph; anything else (crash, foreign exception, invalid
//     structure accepted) is a bug.
//
// Every function appends human-readable failures instead of throwing,
// so one instance can report all violated properties at once and the
// shrinker can re-run the full battery as its predicate.
#pragma once

#include <string>
#include <vector>

#include "core/hypergraph.hpp"
#include "util/rng.hpp"

namespace hp::check {

struct CheckFailure {
  std::string oracle;  ///< e.g. "core_agreement"
  std::string detail;  ///< what disagreed, with values
};

struct CheckOptions {
  /// Include the O(|F|^2 * Delta_F) naive reference in the core
  /// differential. Expensive; disable for throughput measurements.
  bool with_naive = true;
  /// Include the exact all-pairs path cross-check (O(|V| * |E|)).
  bool with_paths = true;
  /// Include serialization round-trips.
  bool with_loaders = true;
  /// Include the AnalysisContext cold-vs-cached comparison.
  bool with_context = true;
  /// Include the incremental-vs-rebuild mutation differential
  /// (check/mutation.hpp): a deterministic random mutation trace seeded
  /// from the instance's structural hash.
  bool with_mutations = true;
  /// Length of the mutation trace per instance.
  int mutation_ops = 16;
  /// Skip the path cross-check above this pin count.
  count_t max_pins_for_paths = 4096;
  /// Include the analysis-server wire-protocol battery
  /// (check/protocol_fuzz.hpp): hostile frames, structured corruption
  /// and round-trips, seeded from the instance's structural hash.
  bool with_protocol = true;
  /// Hostile/corruption/round-trip trials per instance.
  int protocol_trials = 8;
};

/// Run the full oracle battery; empty result = instance is clean.
std::vector<CheckFailure> run_all_oracles(const hyper::Hypergraph& h,
                                          const CheckOptions& options = {});

/// Individual oracle groups (each self-contained).
void check_core_agreement(const hyper::Hypergraph& h, bool with_naive,
                          std::vector<CheckFailure>& failures);
void check_generalized_core(const hyper::Hypergraph& h,
                            std::vector<CheckFailure>& failures);
void check_reduce(const hyper::Hypergraph& h,
                  std::vector<CheckFailure>& failures);
void check_dual(const hyper::Hypergraph& h,
                std::vector<CheckFailure>& failures);
void check_projections(const hyper::Hypergraph& h,
                       std::vector<CheckFailure>& failures);
void check_components_and_paths(const hyper::Hypergraph& h, bool with_paths,
                                std::vector<CheckFailure>& failures);
void check_covers(const hyper::Hypergraph& h,
                  std::vector<CheckFailure>& failures);
void check_context(const hyper::Hypergraph& h,
                   std::vector<CheckFailure>& failures);
void check_roundtrips(const hyper::Hypergraph& h,
                      std::vector<CheckFailure>& failures);

/// Loader robustness under byte/text corruption: `trials` mutations per
/// serialization format, drawn from `rng`.
std::vector<CheckFailure> check_mutated_loads(const hyper::Hypergraph& h,
                                              Rng& rng, int trials);

/// Structural equality that ignores CSR representation details:
/// same vertex count and identical member lists in edge order.
bool same_structure(const hyper::Hypergraph& a, const hyper::Hypergraph& b);

/// One-line instance summary for failure messages ("|V|=12 |F|=30 ...").
std::string describe(const hyper::Hypergraph& h);

}  // namespace hp::check
