#include "check/mutation.hpp"

#include <algorithm>
#include <sstream>

#include "core/kcore.hpp"
#include "core/mutate/mutable_context.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "util/rng.hpp"

namespace hp::check {

using hyper::Hypergraph;
using hyper::HypergraphBuilder;
using hyper::MutableAnalysisContext;

namespace {

/// Independent reference model of the mutable structure: plain member
/// lists and alive flags, sharing no code with MutableHypergraph beyond
/// the builder used to materialize.
struct NaiveModel {
  index_t num_vertices = 0;
  std::vector<char> vertex_alive;
  std::vector<std::vector<index_t>> edges;  // sorted, deduped
  std::vector<char> edge_alive;

  explicit NaiveModel(const Hypergraph& base)
      : num_vertices(base.num_vertices()),
        vertex_alive(base.num_vertices(), 1),
        edges(base.num_edges()),
        edge_alive(base.num_edges(), 1) {
    for (index_t e = 0; e < base.num_edges(); ++e) {
      const auto members = base.vertices_of(e);
      edges[e].assign(members.begin(), members.end());
    }
  }

  /// True when the op is applicable in the current state. Invalid ops
  /// are skipped (identically on both sides); removals of *dead* ids
  /// stay valid -- they are deliberate no-ops.
  bool valid(const MutationOp& op) const {
    switch (op.kind) {
      case MutationOp::Kind::kAddVertex:
        return true;
      case MutationOp::Kind::kRemoveVertex:
        return op.target < num_vertices;
      case MutationOp::Kind::kAddEdge: {
        if (op.members.empty()) return false;
        for (index_t v : op.members) {
          if (v >= num_vertices || !vertex_alive[v]) return false;
        }
        return true;
      }
      case MutationOp::Kind::kRemoveEdge:
        return op.target < edges.size();
    }
    return false;
  }

  void apply(const MutationOp& op) {
    switch (op.kind) {
      case MutationOp::Kind::kAddVertex:
        ++num_vertices;
        vertex_alive.push_back(1);
        break;
      case MutationOp::Kind::kRemoveVertex: {
        if (!vertex_alive[op.target]) break;
        vertex_alive[op.target] = 0;
        for (index_t e = 0; e < edges.size(); ++e) {
          if (!edge_alive[e]) continue;
          auto& mem = edges[e];
          const auto it =
              std::find(mem.begin(), mem.end(), op.target);
          if (it == mem.end()) continue;
          mem.erase(it);
          if (mem.empty()) edge_alive[e] = 0;
        }
        break;
      }
      case MutationOp::Kind::kAddEdge: {
        std::vector<index_t> sorted(op.members);
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()),
                     sorted.end());
        edges.push_back(std::move(sorted));
        edge_alive.push_back(1);
        break;
      }
      case MutationOp::Kind::kRemoveEdge:
        if (edge_alive[op.target]) {
          edge_alive[op.target] = 0;
          edges[op.target].clear();
        }
        break;
    }
  }

  Hypergraph materialize(std::vector<index_t>* live_ids) const {
    HypergraphBuilder builder{num_vertices};
    if (live_ids != nullptr) live_ids->clear();
    for (index_t e = 0; e < edges.size(); ++e) {
      if (!edge_alive[e]) continue;
      builder.add_edge(edges[e]);
      if (live_ids != nullptr) live_ids->push_back(e);
    }
    return builder.build();
  }
};

void fail(std::vector<CheckFailure>& failures, const std::string& detail) {
  failures.push_back({"mutation", detail});
}

template <typename T>
std::string render_vec(const std::vector<T>& v, std::size_t limit = 16) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < v.size() && i < limit; ++i) {
    if (i != 0) out << ' ';
    out << static_cast<long long>(v[i]);
  }
  if (v.size() > limit) out << " ...";
  out << ']';
  return out.str();
}

/// Compare every maintained artifact of `ctx` against a from-scratch
/// recomputation on the model. Returns failures found at this step.
void diff_state(MutableAnalysisContext& ctx, const NaiveModel& model,
                const std::string& where,
                std::vector<CheckFailure>& failures) {
  std::vector<index_t> live_ids;
  const Hypergraph expected = model.materialize(&live_ids);

  const auto& snap = ctx.snapshot();
  if (!same_structure(snap.hypergraph, expected)) {
    fail(failures, where + ": snapshot structure diverged from model (" +
                       describe(snap.hypergraph) + " vs " +
                       describe(expected) + ")");
    return;  // everything downstream would just cascade
  }
  if (snap.edge_to_stable != live_ids) {
    fail(failures, where + ": edge_to_stable " +
                       render_vec(snap.edge_to_stable) + " != model " +
                       render_vec(live_ids));
  }

  const std::vector<index_t>& degrees = ctx.vertex_degrees();
  for (index_t v = 0; v < expected.num_vertices(); ++v) {
    if (degrees[v] != expected.vertex_degree(v)) {
      fail(failures, where + ": degree[" + std::to_string(v) + "] = " +
                         std::to_string(degrees[v]) + ", rebuild says " +
                         std::to_string(expected.vertex_degree(v)));
      break;
    }
  }

  const Histogram vh = hyper::vertex_degree_histogram(expected);
  if (ctx.vertex_degree_histogram().frequencies() != vh.frequencies() ||
      ctx.vertex_degree_histogram().total() != vh.total()) {
    fail(failures, where + ": vertex degree histogram diverged");
  }
  const Histogram eh = hyper::edge_size_histogram(expected);
  if (ctx.edge_size_histogram().frequencies() != eh.frequencies() ||
      ctx.edge_size_histogram().total() != eh.total()) {
    fail(failures, where + ": edge size histogram diverged");
  }

  const hyper::HyperComponents fresh = hyper::connected_components(expected);
  const hyper::HyperComponents& inc = ctx.components();
  if (inc.count != fresh.count || inc.vertex_label != fresh.vertex_label ||
      inc.edge_label != fresh.edge_label ||
      inc.vertex_counts != fresh.vertex_counts ||
      inc.edge_counts != fresh.edge_counts) {
    fail(failures,
         where + ": components diverged (incremental count " +
             std::to_string(inc.count) + ", rebuild " +
             std::to_string(fresh.count) + ", labels " +
             render_vec(inc.vertex_label) + " vs " +
             render_vec(fresh.vertex_label) + ")");
  }

  const hyper::HyperCoreResult fresh_cores =
      hyper::core_decomposition(expected);
  const hyper::HyperCoreResult& inc_cores = ctx.cores();
  if (inc_cores.vertex_core != fresh_cores.vertex_core) {
    fail(failures, where + ": vertex cores diverged: incremental " +
                       render_vec(inc_cores.vertex_core) + " vs rebuild " +
                       render_vec(fresh_cores.vertex_core));
  }
  bool edge_cores_ok = true;
  for (index_t j = 0; j < live_ids.size() && edge_cores_ok; ++j) {
    if (inc_cores.edge_core[live_ids[j]] != fresh_cores.edge_core[j] ||
        inc_cores.in_reduced[live_ids[j]] != fresh_cores.in_reduced[j]) {
      fail(failures,
           where + ": edge core/in_reduced diverged at stable id " +
               std::to_string(live_ids[j]));
      edge_cores_ok = false;
    }
  }
  for (index_t e = 0; e < model.edges.size() && edge_cores_ok; ++e) {
    if (!model.edge_alive[e] &&
        (inc_cores.edge_core[e] != 0 || inc_cores.in_reduced[e] != 0)) {
      fail(failures, where + ": dead edge slot " + std::to_string(e) +
                         " kept core " +
                         std::to_string(inc_cores.edge_core[e]));
      edge_cores_ok = false;
    }
  }
  if (inc_cores.max_core != fresh_cores.max_core ||
      inc_cores.level_vertices != fresh_cores.level_vertices ||
      inc_cores.level_edges != fresh_cores.level_edges) {
    fail(failures,
         where + ": core levels diverged: incremental max " +
             std::to_string(inc_cores.max_core) + " lv " +
             render_vec(inc_cores.level_vertices) + " le " +
             render_vec(inc_cores.level_edges) + " vs rebuild max " +
             std::to_string(fresh_cores.max_core) + " lv " +
             render_vec(fresh_cores.level_vertices) + " le " +
             render_vec(fresh_cores.level_edges));
  }
}

/// Apply one op to the incremental side, mirroring NaiveModel::apply.
void apply_to_context(MutableAnalysisContext& ctx, const MutationOp& op) {
  switch (op.kind) {
    case MutationOp::Kind::kAddVertex:
      ctx.graph().add_vertex();
      break;
    case MutationOp::Kind::kRemoveVertex:
      ctx.graph().remove_vertex(op.target);
      break;
    case MutationOp::Kind::kAddEdge:
      ctx.graph().add_hyperedge(op.members);
      break;
    case MutationOp::Kind::kRemoveEdge:
      ctx.graph().remove_hyperedge(op.target);
      break;
  }
}

void warm_artifacts(MutableAnalysisContext& ctx) {
  ctx.vertex_degrees();
  ctx.vertex_degree_histogram();
  ctx.edge_size_histogram();
  ctx.components();
  ctx.cores();
}

}  // namespace

std::string to_string(const MutationOp& op) {
  std::ostringstream out;
  switch (op.kind) {
    case MutationOp::Kind::kAddVertex:
      out << "add-vertex";
      break;
    case MutationOp::Kind::kRemoveVertex:
      out << "remove-vertex " << op.target;
      break;
    case MutationOp::Kind::kAddEdge:
      out << "add-edge";
      for (index_t v : op.members) out << ' ' << v;
      break;
    case MutationOp::Kind::kRemoveEdge:
      out << "remove-edge " << op.target;
      break;
  }
  return out.str();
}

std::uint64_t structural_hash(const Hypergraph& h) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 0x100000001b3ULL;
  };
  mix(h.num_vertices());
  mix(h.num_edges());
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const auto members = h.vertices_of(e);
    mix(members.size());
    for (index_t v : members) mix(v);
  }
  return hash;
}

std::vector<MutationOp> generate_trace(const Hypergraph& base,
                                       std::uint64_t seed,
                                       const MutationTraceOptions& options) {
  Rng rng{seed};
  NaiveModel model{base};
  std::vector<index_t> alive_vertices;
  for (index_t v = 0; v < model.num_vertices; ++v) alive_vertices.push_back(v);
  std::vector<index_t> live_edges;
  for (index_t e = 0; e < model.edges.size(); ++e) live_edges.push_back(e);
  std::vector<index_t> dead_edges;
  index_t last_added_edge = kInvalidIndex;

  const auto refresh_alive = [&] {
    alive_vertices.clear();
    for (index_t v = 0; v < model.num_vertices; ++v) {
      if (model.vertex_alive[v]) alive_vertices.push_back(v);
    }
    live_edges.clear();
    for (index_t e = 0; e < model.edges.size(); ++e) {
      if (model.edge_alive[e]) live_edges.push_back(e);
    }
  };

  std::vector<MutationOp> trace;
  for (int i = 0; i < options.num_ops; ++i) {
    MutationOp op;
    const std::uint64_t roll = rng.uniform(100);
    if (roll < 10 || alive_vertices.empty()) {
      op.kind = MutationOp::Kind::kAddVertex;
    } else if (roll < 18) {
      op.kind = MutationOp::Kind::kRemoveVertex;
      op.target = alive_vertices[rng.pick(alive_vertices.size())];
    } else if (roll < 52) {
      // Fresh random edge; with some probability plant a duplicate
      // member to exercise the dedup path.
      op.kind = MutationOp::Kind::kAddEdge;
      const std::size_t want = 1 + rng.pick(std::min<std::size_t>(
                                      options.max_edge_size,
                                      alive_vertices.size()));
      for (std::size_t m = 0; m < want; ++m) {
        op.members.push_back(alive_vertices[rng.pick(alive_vertices.size())]);
      }
      if (rng.bernoulli(0.2)) op.members.push_back(op.members.front());
    } else if (roll < 64 && !live_edges.empty()) {
      // Duplicate insert: a whole edge equal to an existing one.
      op.kind = MutationOp::Kind::kAddEdge;
      const index_t source = live_edges[rng.pick(live_edges.size())];
      op.members = model.edges[source];
    } else if (roll < 80 && !live_edges.empty()) {
      op.kind = MutationOp::Kind::kRemoveEdge;
      op.target = live_edges[rng.pick(live_edges.size())];
    } else if (roll < 88 && last_added_edge != kInvalidIndex &&
               last_added_edge < model.edge_alive.size() &&
               model.edge_alive[last_added_edge]) {
      // Remove-just-added: the adversarial insert/delete interleaving.
      op.kind = MutationOp::Kind::kRemoveEdge;
      op.target = last_added_edge;
    } else if (roll < 94 && !dead_edges.empty()) {
      // Deliberate no-op: removing an already-dead slot must not
      // disturb anything.
      op.kind = MutationOp::Kind::kRemoveEdge;
      op.target = dead_edges[rng.pick(dead_edges.size())];
    } else {
      op.kind = MutationOp::Kind::kAddVertex;
    }

    if (!model.valid(op)) {
      op = MutationOp{};  // degrade to add-vertex, always valid
    }
    if (op.kind == MutationOp::Kind::kAddEdge) {
      last_added_edge = static_cast<index_t>(model.edges.size());
    } else if (op.kind == MutationOp::Kind::kRemoveEdge &&
               op.target < model.edge_alive.size() &&
               model.edge_alive[op.target]) {
      dead_edges.push_back(op.target);
    }
    model.apply(op);
    refresh_alive();
    trace.push_back(std::move(op));
  }
  return trace;
}

void check_mutation_trace(const Hypergraph& base,
                          const std::vector<MutationOp>& trace,
                          std::vector<CheckFailure>& failures) {
  // Per-op pass: artifacts warm from the start, compared after every
  // step, so each incremental path (histogram moves, union-find unions,
  // bounded core repairs) is exercised against a rebuild.
  {
    MutableAnalysisContext ctx{base};
    warm_artifacts(ctx);
    NaiveModel model{base};
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (!model.valid(trace[i])) continue;
      try {
        apply_to_context(ctx, trace[i]);
      } catch (const std::exception& e) {
        fail(failures, "step " + std::to_string(i) + " (" +
                           to_string(trace[i]) +
                           "): unexpected exception: " + e.what());
        return;
      }
      model.apply(trace[i]);
      diff_state(ctx, model, "step " + std::to_string(i), failures);
      if (!failures.empty()) return;
    }
  }
  // Batched pass: one drain window for the whole trace; compares the
  // multi-window accumulation logic (first-touch old-value capture)
  // against the same rebuild.
  {
    MutableAnalysisContext ctx{base};
    warm_artifacts(ctx);
    NaiveModel model{base};
    for (const MutationOp& op : trace) {
      if (!model.valid(op)) continue;
      apply_to_context(ctx, op);
      model.apply(op);
    }
    diff_state(ctx, model, "batched", failures);
  }
}

std::vector<MutationOp> shrink_trace(
    const std::vector<MutationOp>& trace,
    const std::function<bool(const std::vector<MutationOp>&)>& still_fails) {
  std::vector<MutationOp> current = trace;
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t chunk =
        std::max<std::size_t>(1, current.size() / granularity);
    bool removed = false;
    for (std::size_t start = 0; start < current.size(); start += chunk) {
      std::vector<MutationOp> candidate;
      candidate.reserve(current.size());
      for (std::size_t i = 0; i < current.size(); ++i) {
        if (i >= start && i < start + chunk) continue;
        candidate.push_back(current[i]);
      }
      if (candidate.size() < current.size() && still_fails(candidate)) {
        current = std::move(candidate);
        removed = true;
        break;
      }
    }
    if (removed) {
      granularity = std::max<std::size_t>(2, granularity - 1);
    } else if (chunk > 1) {
      granularity *= 2;
    } else {
      break;
    }
  }
  return current;
}

void check_mutations(const Hypergraph& h, int num_ops,
                     std::vector<CheckFailure>& failures) {
  MutationTraceOptions options;
  options.num_ops = num_ops;
  const std::uint64_t seed = structural_hash(h);
  const std::vector<MutationOp> trace = generate_trace(h, seed, options);
  std::vector<CheckFailure> local;
  check_mutation_trace(h, trace, local);
  if (local.empty()) return;

  // Shrink the trace before reporting: the minimal subsequence is what
  // a human wants to replay.
  const auto predicate = [&h](const std::vector<MutationOp>& candidate) {
    std::vector<CheckFailure> probe;
    check_mutation_trace(h, candidate, probe);
    return !probe.empty();
  };
  const std::vector<MutationOp> minimal = shrink_trace(trace, predicate);
  std::ostringstream rendered;
  rendered << "minimal trace (" << minimal.size() << "/" << trace.size()
           << " ops):";
  for (const MutationOp& op : minimal) rendered << " {" << to_string(op)
                                                << "}";
  for (CheckFailure& f : local) {
    failures.push_back(
        {"mutation", f.detail + " -- " + rendered.str()});
  }
}

}  // namespace hp::check
