// Differential oracle for the mutable pipeline (core/mutate/).
//
// A mutation trace is a sequence of MutationOps (insert/delete of
// vertices and hyperedges, including deliberately adversarial flavors:
// duplicate inserts, remove-just-added, removals of already-dead ids).
// The oracle drives a MutableAnalysisContext through the trace and
// after every operation compares each incrementally maintained artifact
// -- degrees, both histograms, components, core numbers -- against a
// from-scratch recomputation on an independently maintained naive model
// of the structure. A second pass applies the whole trace as one batch
// and compares once, exercising multi-window dirty accumulation.
//
// Op semantics are defined relative to the *current* model state, and
// ops that are invalid in that state (dangling target ids, dead
// members) are skipped identically on both sides. That closure under
// subsequences is what makes ddmin trace shrinking sound: any
// subsequence of a failing trace is itself a well-defined trace.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "core/hypergraph.hpp"

namespace hp::check {

struct MutationOp {
  enum class Kind : std::uint8_t {
    kAddVertex,
    kRemoveVertex,
    kAddEdge,
    kRemoveEdge,
  };
  Kind kind = Kind::kAddVertex;
  /// Vertex or edge id for removals (stable id space).
  index_t target = kInvalidIndex;
  /// Member vertices for kAddEdge (may contain duplicates on purpose).
  std::vector<index_t> members;
};

std::string to_string(const MutationOp& op);

struct MutationTraceOptions {
  int num_ops = 16;
  index_t max_edge_size = 8;
};

/// Deterministic random trace, valid step-by-step against the evolving
/// structure (modulo the deliberate no-op removals of dead ids).
std::vector<MutationOp> generate_trace(const hyper::Hypergraph& base,
                                       std::uint64_t seed,
                                       const MutationTraceOptions& options = {});

/// Drive the incremental pipeline through `trace`, comparing every
/// maintained artifact against a from-scratch rebuild after each op
/// (and once more after a batched replay). Appends failures.
void check_mutation_trace(const hyper::Hypergraph& base,
                          const std::vector<MutationOp>& trace,
                          std::vector<CheckFailure>& failures);

/// run_all_oracles entry point: the trace seed is derived from a
/// structural hash of the instance, so corpus replays and shrunk
/// reproducers re-exercise the same mutations deterministically.
void check_mutations(const hyper::Hypergraph& h, int num_ops,
                     std::vector<CheckFailure>& failures);

/// ddmin over the op list: returns a (locally) minimal subsequence for
/// which `still_fails` holds. `still_fails(trace)` must be true for the
/// input trace.
std::vector<MutationOp> shrink_trace(
    const std::vector<MutationOp>& trace,
    const std::function<bool(const std::vector<MutationOp>&)>& still_fails);

/// FNV-1a over the structure (vertex count, edge member lists).
std::uint64_t structural_hash(const hyper::Hypergraph& h);

}  // namespace hp::check
