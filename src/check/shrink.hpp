// Greedy reproducer minimization for the fuzzing harness.
//
// Given an instance on which some oracle fails and a predicate that
// re-runs the failing check, the shrinker searches for a structurally
// smaller instance that still fails, in three alternating passes until
// a fixpoint (or the call budget) is reached:
//
//   1. edge removal  -- delta-debugging style: drop halves, quarters,
//      ... down to single hyperedges;
//   2. member removal -- shrink each surviving hyperedge the same way
//      (never below one member);
//   3. vertex compaction -- drop vertices no longer referenced and
//      renumber densely (also discards isolated vertices unless the
//      failure depends on them).
//
// The result is what gets written to tests/corpus/ -- a handful of
// edges instead of a 50-edge haystack, replayable as a ctest case.
#pragma once

#include <functional>

#include "core/hypergraph.hpp"

namespace hp::check {

/// Returns true while the candidate instance still exhibits the
/// failure. Must be deterministic for the shrink to make sense.
using FailurePredicate = std::function<bool(const hyper::Hypergraph&)>;

struct ShrinkStats {
  int passes = 0;               ///< full passes until fixpoint
  count_t predicate_calls = 0;  ///< candidate evaluations spent
};

struct ShrinkOptions {
  /// Hard cap on predicate evaluations; the shrink returns the best
  /// instance found so far when exhausted.
  count_t max_predicate_calls = 20000;
};

/// Minimize `h` under `still_fails`. Precondition: still_fails(h) is
/// true; the returned instance also satisfies it.
hyper::Hypergraph shrink(const hyper::Hypergraph& h,
                         const FailurePredicate& still_fails,
                         const ShrinkOptions& options = {},
                         ShrinkStats* stats = nullptr);

}  // namespace hp::check
