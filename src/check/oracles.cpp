#include "check/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "core/binary_io.hpp"
#include "core/context/analysis_context.hpp"
#include "core/cover.hpp"
#include "core/dual.hpp"
#include "core/generalized_core.hpp"
#include "core/hypergraph_io.hpp"
#include "core/kcore.hpp"
#include "core/kcore_naive.hpp"
#include "core/kcore_parallel.hpp"
#include "core/multicover.hpp"
#include "core/overlap.hpp"
#include "core/pajek.hpp"
#include "core/projection.hpp"
#include "core/reduce.hpp"
#include "core/snapshot/snapshot.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "check/generator.hpp"
#include "check/mutation.hpp"
#include "check/protocol_fuzz.hpp"
#include "graph/graph_kcore.hpp"
#include "mm/matrix_market.hpp"
#include "mm/mm_to_hypergraph.hpp"

namespace hp::check {

using hyper::Hypergraph;

namespace {

void fail(std::vector<CheckFailure>& failures, const char* oracle,
          std::string detail) {
  failures.push_back(CheckFailure{oracle, std::move(detail)});
}

/// Compare two core decompositions field-by-field (edge_core is
/// deliberately excluded: the representative choice among identical
/// residual edges is implementation-defined, see kcore.hpp).
void diff_cores(const hyper::HyperCoreResult& a,
                const hyper::HyperCoreResult& b, const char* label,
                std::vector<CheckFailure>& failures) {
  if (a.max_core != b.max_core) {
    fail(failures, "core_agreement",
         std::string{label} + ": max_core " + std::to_string(a.max_core) +
             " vs " + std::to_string(b.max_core));
  }
  if (a.vertex_core != b.vertex_core) {
    fail(failures, "core_agreement",
         std::string{label} + ": vertex core numbers differ");
  }
  if (a.level_vertices != b.level_vertices) {
    fail(failures, "core_agreement",
         std::string{label} + ": per-level vertex counts differ");
  }
  if (a.level_edges != b.level_edges) {
    fail(failures, "core_agreement",
         std::string{label} + ": per-level edge counts differ");
  }
}

/// Stricter comparison for same-discipline engine pairs (frontier vs
/// legacy scan seeding): those are required to be fully bit-identical,
/// including the edge representative choice and the reduction mask.
void diff_cores_exact(const hyper::HyperCoreResult& a,
                      const hyper::HyperCoreResult& b, const char* label,
                      std::vector<CheckFailure>& failures) {
  diff_cores(a, b, label, failures);
  if (a.edge_core != b.edge_core) {
    fail(failures, "core_agreement",
         std::string{label} + ": edge core numbers differ");
  }
  if (a.in_reduced != b.in_reduced) {
    fail(failures, "core_agreement",
         std::string{label} + ": reduction masks differ");
  }
}

}  // namespace

bool same_structure(const Hypergraph& a, const Hypergraph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  if (a.num_pins() != b.num_pins()) return false;
  for (index_t e = 0; e < a.num_edges(); ++e) {
    const auto ma = a.vertices_of(e);
    const auto mb = b.vertices_of(e);
    if (!std::equal(ma.begin(), ma.end(), mb.begin(), mb.end())) return false;
  }
  return true;
}

std::string describe(const Hypergraph& h) {
  std::ostringstream out;
  out << "|V|=" << h.num_vertices() << " |F|=" << h.num_edges()
      << " |E|=" << h.num_pins();
  return out.str();
}

void check_core_agreement(const Hypergraph& h, bool with_naive,
                          std::vector<CheckFailure>& failures) {
  const hyper::HyperCoreResult fast = hyper::core_decomposition(h);
  if (with_naive) {
    diff_cores(fast, hyper::core_decomposition_naive(h), "naive", failures);
  }
  const hyper::HyperCoreResult parallel = hyper::core_decomposition_parallel(h);
  diff_cores(fast, parallel, "parallel", failures);
  // Frontier engines vs their legacy scan-seeded twins: these share the
  // cascade code and must agree on every byte of the result.
  diff_cores_exact(fast, hyper::core_decomposition_scan(h), "frontier-vs-scan",
                   failures);
  diff_cores_exact(parallel, hyper::core_decomposition_parallel_scan(h),
                   "par-frontier-vs-scan", failures);

  // Level counts must match the per-vertex representation, and cores
  // are nested, so the counts are non-increasing in k.
  for (index_t k = 0; k <= fast.max_core; ++k) {
    if (k < fast.level_vertices.size() &&
        fast.level_vertices[k] != fast.core_vertices(k).size()) {
      fail(failures, "core_agreement",
           "level_vertices[" + std::to_string(k) +
               "] != |core_vertices(k)|");
    }
    if (k > 0 && k < fast.level_vertices.size() &&
        fast.level_vertices[k] > fast.level_vertices[k - 1]) {
      fail(failures, "core_agreement",
           "level_vertices increases at k=" + std::to_string(k));
    }
  }

  // Every extracted core must satisfy the paper's definition: reduced,
  // and minimum degree >= k.
  for (index_t k = 1; k <= fast.max_core; ++k) {
    const hyper::SubHypergraph core = hyper::extract_core(h, fast, k);
    if (!hyper::satisfies_core_conditions(core.hypergraph, k)) {
      fail(failures, "core_agreement",
           "extracted " + std::to_string(k) +
               "-core violates the core conditions");
    }
  }
}

void check_generalized_core(const Hypergraph& h,
                            std::vector<CheckFailure>& failures) {
  // The kNeighborhood measure (distinct live co-members) is exactly the
  // residual degree in the clique expansion, and the min-first peel is
  // exactly the Batagelj-Zaversnik graph core algorithm -- so the two
  // decompositions must agree vertex-by-vertex.
  const hyper::GeneralizedCoreResult gc =
      hyper::generalized_core(h, hyper::CoreMeasure::kNeighborhood);
  const graph::CoreDecomposition graph_cores =
      graph::core_decomposition(hyper::clique_expansion(h));
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    if (gc.value[v] != static_cast<double>(graph_cores.core[v])) {
      fail(failures, "generalized_core",
           "kNeighborhood core of v" + std::to_string(v) + " = " +
               std::to_string(gc.value[v]) + " but clique-graph core = " +
               std::to_string(graph_cores.core[v]));
      break;
    }
  }

  // kDegree core values can never exceed the intact vertex degree (the
  // measure is monotone under deletions and starts below it).
  const hyper::GeneralizedCoreResult gd =
      hyper::generalized_core(h, hyper::CoreMeasure::kDegree);
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    if (gd.value[v] > static_cast<double>(h.vertex_degree(v))) {
      fail(failures, "generalized_core",
           "kDegree core of v" + std::to_string(v) +
               " exceeds its intact degree");
      break;
    }
  }
}

void check_reduce(const Hypergraph& h, std::vector<CheckFailure>& failures) {
  const hyper::SubHypergraph reduced = hyper::reduce(h);
  if (!hyper::is_reduced(reduced.hypergraph)) {
    fail(failures, "reduce", "reduce() output is not reduced");
  }
  // Idempotence: reducing a reduced hypergraph removes nothing.
  if (hyper::find_non_maximal(reduced.hypergraph).num_removed != 0) {
    fail(failures, "reduce", "reduce() is not idempotent");
  }
  // The level-0 residual of the decomposition is exactly the reduction.
  const hyper::ReduceResult r = hyper::find_non_maximal(h);
  const hyper::HyperCoreResult cores = hyper::core_decomposition(h);
  if (!cores.level_edges.empty() &&
      cores.level_edges[0] != h.num_edges() - r.num_removed) {
    fail(failures, "reduce",
         "level-0 edge count " + std::to_string(cores.level_edges[0]) +
             " != surviving edges " +
             std::to_string(h.num_edges() - r.num_removed));
  }
  if (reduced.hypergraph.num_edges() != h.num_edges() - r.num_removed) {
    fail(failures, "reduce", "reduce() kept a different edge count than "
                             "find_non_maximal() reported");
  }
}

void check_dual(const Hypergraph& h, std::vector<CheckFailure>& failures) {
  const Hypergraph d = hyper::dual(h);
  if (d.num_pins() != h.num_pins()) {
    fail(failures, "dual", "dual changed the pin count");
  }
  // Involution up to isolated vertices: dual(dual(H)) must equal H with
  // degree-0 vertices dropped (ids compacted in order).
  std::vector<bool> keep_vertex(h.num_vertices());
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    keep_vertex[v] = h.vertex_degree(v) > 0;
  }
  const std::vector<bool> keep_edge(h.num_edges(), true);
  const Hypergraph expected =
      hyper::induce(h, keep_vertex, keep_edge).hypergraph;
  if (!same_structure(hyper::dual(d), expected)) {
    fail(failures, "dual",
         "dual(dual(H)) differs from H minus isolated vertices");
  }
}

void check_projections(const Hypergraph& h,
                       std::vector<CheckFailure>& failures) {
  const graph::Graph clique = hyper::clique_expansion(h);
  const graph::Graph star =
      hyper::star_expansion(h, hyper::default_baits(h));
  const graph::Graph bipartite = hyper::bipartite_graph(h);
  const graph::Graph intersection = hyper::intersection_graph(h);

  // Every within-edge pair is a clique edge.
  for (index_t e = 0; e < h.num_edges(); ++e) {
    const auto members = h.vertices_of(e);
    for (std::size_t i = 0; i + 1 < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (!clique.has_edge(members[i], members[j])) {
          fail(failures, "projections",
               "clique expansion misses a within-edge pair");
          return;
        }
      }
    }
  }
  // Star edges are a subset of clique edges.
  for (index_t v = 0; v < star.num_vertices(); ++v) {
    for (index_t w : star.neighbors(v)) {
      if (!clique.has_edge(v, w)) {
        fail(failures, "projections",
             "star expansion contains a non-clique edge");
        return;
      }
    }
  }
  // The bipartite incidence graph has one edge per pin, and degrees
  // mirror vertex degrees / edge sizes.
  if (bipartite.num_vertices() !=
      h.num_vertices() + h.num_edges()) {
    fail(failures, "projections", "bipartite graph vertex count wrong");
  } else {
    if (bipartite.num_edges() != h.num_pins()) {
      fail(failures, "projections",
           "bipartite edge count != pin count");
    }
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      if (bipartite.degree(v) != h.vertex_degree(v)) {
        fail(failures, "projections",
             "bipartite degree mismatch on a protein node");
        break;
      }
    }
    for (index_t e = 0; e < h.num_edges(); ++e) {
      if (bipartite.degree(h.num_vertices() + e) != h.edge_size(e)) {
        fail(failures, "projections",
             "bipartite degree mismatch on a complex node");
        break;
      }
    }
  }
  // The intersection graph agrees with the overlap table: f ~ g exactly
  // when |f ∩ g| >= 1.
  const hyper::OverlapTable overlaps{h};
  for (index_t f = 0; f < h.num_edges(); ++f) {
    const auto row = overlaps.row(f);
    if (row.size() != intersection.degree(f)) {
      fail(failures, "projections",
           "intersection-graph degree of f" + std::to_string(f) +
               " != overlap-table degree2");
      return;
    }
    for (auto [g, count] : row) {
      if (count == 0 || !intersection.has_edge(f, g)) {
        fail(failures, "projections",
             "overlap table and intersection graph disagree");
        return;
      }
    }
  }
}

void check_components_and_paths(const Hypergraph& h, bool with_paths,
                                std::vector<CheckFailure>& failures) {
  const hyper::HyperComponents comps = hyper::connected_components(h);
  count_t vertex_sum = 0, edge_sum = 0;
  for (index_t c = 0; c < comps.count; ++c) {
    vertex_sum += comps.vertex_counts[c];
    edge_sum += comps.edge_counts[c];
  }
  if (vertex_sum != h.num_vertices() || edge_sum != h.num_edges()) {
    fail(failures, "components", "component counts do not partition the "
                                 "vertex/edge sets");
  }
  // Incidence never crosses components.
  for (index_t e = 0; e < h.num_edges(); ++e) {
    for (index_t v : h.vertices_of(e)) {
      if (comps.vertex_label[v] != comps.edge_label[e]) {
        fail(failures, "components",
             "a pin connects two different components");
        return;
      }
    }
  }

  if (!with_paths) return;
  // Recompute the exact path summary one BFS at a time and require
  // agreement with the (parallel) path_summary implementation. BFS
  // reachability must also match the component labelling.
  const hyper::HyperPathSummary summary = hyper::path_summary(h);
  index_t diameter = 0;
  count_t pairs = 0;
  double total_length = 0.0;
  for (index_t source = 0; source < h.num_vertices(); ++source) {
    const std::vector<index_t> dist = hyper::bfs_distances(h, source);
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      const bool reachable = dist[v] != kInvalidIndex;
      if (reachable !=
          (comps.vertex_label[v] == comps.vertex_label[source])) {
        fail(failures, "paths", "BFS reachability disagrees with "
                                "component labels");
        return;
      }
      if (v == source || !reachable) continue;
      diameter = std::max(diameter, dist[v]);
      ++pairs;
      total_length += dist[v];
    }
  }
  if (summary.diameter != diameter) {
    fail(failures, "paths",
         "diameter " + std::to_string(summary.diameter) +
             " != BFS recomputation " + std::to_string(diameter));
  }
  if (summary.connected_pairs != pairs) {
    fail(failures, "paths", "connected pair counts differ");
  }
  const double average = pairs > 0 ? total_length / pairs : 0.0;
  if (std::abs(summary.average_length - average) > 1e-6) {
    fail(failures, "paths", "average path lengths differ");
  }
}

void check_covers(const Hypergraph& h, std::vector<CheckFailure>& failures) {
  const std::vector<double> weights = hyper::unit_weights(h);
  const hyper::CoverResult cover = hyper::greedy_vertex_cover(h, weights);
  if (!hyper::is_vertex_cover(h, cover.vertices)) {
    fail(failures, "covers", "greedy vertex cover is not a cover");
  }
  const std::vector<index_t> requirements(h.num_edges(), 2);
  const hyper::MulticoverResult mc = hyper::greedy_multicover(h, weights, 2);
  if (!hyper::is_multicover(h, mc.vertices, requirements)) {
    fail(failures, "covers", "greedy 2-multicover is not a 2-multicover");
  }
}

void check_context(const Hypergraph& h, std::vector<CheckFailure>& failures) {
  hyper::AnalysisContext context{h};

  // Cached artifacts must equal cold computations on the same input.
  if (!same_structure(context.dual(), hyper::dual(h))) {
    fail(failures, "context", "cached dual != cold dual");
  }
  if (!same_structure(context.reduced().hypergraph,
                      hyper::reduce(h).hypergraph)) {
    fail(failures, "context", "cached reduced != cold reduce");
  }
  const hyper::HyperCoreResult cold = hyper::core_decomposition(h);
  diff_cores(context.cores(), cold, "context-vs-cold", failures);

  const hyper::HypergraphSummary cached = context.summary();
  const hyper::HypergraphSummary cold_summary = hyper::summarize(h);
  if (cached.num_vertices != cold_summary.num_vertices ||
      cached.num_edges != cold_summary.num_edges ||
      cached.num_pins != cold_summary.num_pins ||
      cached.num_components != cold_summary.num_components ||
      cached.max_degree2 != cold_summary.max_degree2 ||
      cached.degree_one_vertices != cold_summary.degree_one_vertices ||
      cached.isolated_vertices != cold_summary.isolated_vertices) {
    fail(failures, "context", "cached summary != cold summarize()");
  }

  // Repeated access must serve the identical object (memoization, not
  // recomputation).
  if (&context.dual() != &context.dual() ||
      &context.cores() != &context.cores()) {
    fail(failures, "context", "repeated access rebuilt an artifact");
  }
}

void check_roundtrips(const Hypergraph& h,
                      std::vector<CheckFailure>& failures) {
  try {
    if (!same_structure(hyper::from_text(hyper::to_text(h)), h)) {
      fail(failures, "roundtrip", "text round-trip changed the hypergraph");
    }
    if (!same_structure(hyper::from_hmetis(hyper::to_hmetis(h)), h)) {
      fail(failures, "roundtrip",
           "hMETIS round-trip changed the hypergraph");
    }
    if (!same_structure(hyper::from_binary(hyper::to_binary(h)), h)) {
      fail(failures, "roundtrip",
           "binary round-trip changed the hypergraph");
    }
    // Snapshot bytes, both codecs, differentially against the text
    // loader: to_text/from_text is the independent reference.
    const Hypergraph via_text = hyper::from_text(hyper::to_text(h));
    if (!same_structure(hyper::snapshot::from_bytes(
                            hyper::snapshot::to_bytes(h)),
                        via_text)) {
      fail(failures, "roundtrip",
           "snapshot (raw) round-trip disagrees with the text loader");
    }
    hyper::snapshot::SaveOptions varint;
    varint.codec = hyper::snapshot::Codec::kVarint;
    if (!same_structure(hyper::snapshot::from_bytes(
                            hyper::snapshot::to_bytes(h, varint)),
                        via_text)) {
      fail(failures, "roundtrip",
           "snapshot (varint) round-trip disagrees with the text loader");
    }
  } catch (const std::exception& e) {
    fail(failures, "roundtrip",
         std::string{"serializing a valid hypergraph threw: "} + e.what());
    return;
  }

  // MatrixMarket: incidence matrix (rows = hyperedges) through the
  // row-net model must reproduce the instance exactly.
  try {
    mm::CooMatrix m;
    m.num_rows = h.num_edges();
    m.num_cols = h.num_vertices();
    m.field = mm::Field::kPattern;
    m.symmetry = mm::Symmetry::kGeneral;
    for (index_t e = 0; e < h.num_edges(); ++e) {
      for (index_t v : h.vertices_of(e)) {
        m.entries.push_back(mm::Entry{e, v, 1.0});
      }
    }
    const mm::CooMatrix parsed =
        mm::parse_matrix_market(mm::format_matrix_market(m));
    if (!same_structure(mm::row_net_hypergraph(parsed), h)) {
      fail(failures, "roundtrip",
           "MatrixMarket row-net round-trip changed the hypergraph");
    }
  } catch (const std::exception& e) {
    fail(failures, "roundtrip",
         std::string{"MatrixMarket round-trip threw: "} + e.what());
  }

  // Pajek is export-only; verify the declared line structure: header +
  // one line per node + "*Edges" + one line per pin.
  const std::string pajek = hyper::to_pajek_bipartite(h);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(pajek.begin(), pajek.end(), '\n'));
  const std::size_t expected = 1 + h.num_vertices() + h.num_edges() + 1 +
                               static_cast<std::size_t>(h.num_pins());
  if (lines != expected) {
    fail(failures, "roundtrip",
         "Pajek export has " + std::to_string(lines) + " lines, expected " +
             std::to_string(expected));
  }
}

std::vector<CheckFailure> check_mutated_loads(const Hypergraph& h, Rng& rng,
                                              int trials) {
  std::vector<CheckFailure> failures;

  struct Format {
    const char* name;
    bool binary;
    std::string serialized;
    Hypergraph (*parse)(const std::string&);
  };
  mm::CooMatrix incidence;
  incidence.num_rows = h.num_edges();
  incidence.num_cols = h.num_vertices();
  incidence.field = mm::Field::kPattern;
  for (index_t e = 0; e < h.num_edges(); ++e) {
    for (index_t v : h.vertices_of(e)) {
      incidence.entries.push_back(mm::Entry{e, v, 1.0});
    }
  }
  hyper::snapshot::SaveOptions varint_options;
  varint_options.codec = hyper::snapshot::Codec::kVarint;
  const Format formats[] = {
      {"text", false, hyper::to_text(h),
       [](const std::string& s) { return hyper::from_text(s); }},
      {"hmetis", false, hyper::to_hmetis(h),
       [](const std::string& s) { return hyper::from_hmetis(s); }},
      {"binary", true, hyper::to_binary(h),
       [](const std::string& s) { return hyper::from_binary(s); }},
      {"matrix_market", false, mm::format_matrix_market(incidence),
       [](const std::string& s) {
         return mm::row_net_hypergraph(mm::parse_matrix_market(s));
       }},
      // Snapshot corruption oracle: byte-flips across header, offset
      // tables and adjacency sections must either be detected
      // (ParseError from the checksum/bounds checks) or yield a graph
      // that still passes validate() -- never UB or a crash.
      {"snapshot", true, hyper::snapshot::to_bytes(h),
       [](const std::string& s) { return hyper::snapshot::from_bytes(s); }},
      {"snapshot_varint", true, hyper::snapshot::to_bytes(h, varint_options),
       [](const std::string& s) { return hyper::snapshot::from_bytes(s); }},
  };

  for (const Format& format : formats) {
    for (int trial = 0; trial < trials; ++trial) {
      const int edits = 1 + static_cast<int>(rng.uniform(8));
      const std::string corrupted =
          format.binary ? mutate_bytes(rng, format.serialized, edits)
                        : mutate_text(rng, format.serialized, edits);
      std::optional<Hypergraph> parsed;
      try {
        parsed = format.parse(corrupted);
      } catch (const ParseError&) {
        continue;  // the contract: reject with a structured error
      } catch (const InvalidInputError&) {
        continue;
      } catch (const std::exception& e) {
        fail(failures, "mutated_load",
             std::string{format.name} + ": unexpected exception type: " +
                 e.what());
        continue;
      }
      // Accepting a corrupted file is fine only if the result is a
      // structurally valid hypergraph.
      try {
        hyper::validate(*parsed);
      } catch (const std::exception& e) {
        fail(failures, "mutated_load",
             std::string{format.name} +
                 ": accepted a structurally invalid hypergraph: " + e.what());
      }
    }
  }
  return failures;
}

std::vector<CheckFailure> run_all_oracles(const Hypergraph& h,
                                          const CheckOptions& options) {
  std::vector<CheckFailure> failures;
  check_core_agreement(h, options.with_naive, failures);
  check_generalized_core(h, failures);
  check_reduce(h, failures);
  check_dual(h, failures);
  check_projections(h, failures);
  check_components_and_paths(
      h, options.with_paths && h.num_pins() <= options.max_pins_for_paths,
      failures);
  check_covers(h, failures);
  if (options.with_context) check_context(h, failures);
  if (options.with_mutations) check_mutations(h, options.mutation_ops, failures);
  if (options.with_loaders) check_roundtrips(h, failures);
  if (options.with_protocol) {
    // Same seeding discipline as the mutation differential: the trace
    // is a pure function of the instance, so a CI failure replays from
    // the seed alone.
    Rng rng{structural_hash(h) ^ 0x70726f746fULL};  // "proto"
    std::vector<CheckFailure> protocol =
        check_protocol(rng, options.protocol_trials);
    failures.insert(failures.end(), protocol.begin(), protocol.end());
  }
  return failures;
}

}  // namespace hp::check
