// Fuzz oracle for the analysis-server wire protocol
// (serve/protocol.hpp): the parsers face untrusted sockets, so their
// contract -- return a validated value or throw hp::ParseError, never
// crash, never accept garbage, never return anything that fails to
// re-serialize -- is hammered with generated hostile frames.
//
// Three attack families per seed:
//   * structured corruption -- format a valid random request/response,
//     then corrupt it with text edits (byte flips, truncation,
//     duplication, deletions) and parse the wreckage;
//   * hostile construction  -- adversarial frames built directly:
//     deep nesting ("[[[["), huge tokens, wrong types, duplicate keys,
//     surrogate escapes, NUL bytes, oversized frames, empty input;
//   * round-trip            -- parse(format(x)) must reproduce x
//     exactly for every valid request/response, including args order.
//
// Wired into run_fuzz alongside the loader-corruption trials, so the
// 1000-seed CI smoke (ASan) covers the protocol with zero extra
// plumbing.
#pragma once

#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "util/rng.hpp"

namespace hp::check {

/// Run `trials` hostile-frame parses plus one round-trip battery, all
/// deterministic from `rng`. Appends a CheckFailure (oracle "protocol")
/// per violation; a clean parser appends nothing.
std::vector<CheckFailure> check_protocol(Rng& rng, int trials);

/// Build one syntactically valid random request frame (the corruption
/// seed material). Exposed for tests.
std::string random_request_frame(Rng& rng);

/// Build one syntactically valid random response frame.
std::string random_response_frame(Rng& rng);

}  // namespace hp::check
