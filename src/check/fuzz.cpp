#include "check/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "check/shrink.hpp"
#include "core/hypergraph_io.hpp"

namespace hp::check {

namespace fs = std::filesystem;
using hyper::Hypergraph;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Oracle names joined for log lines and reproducer headers.
std::string join_oracles(const std::vector<CheckFailure>& checks) {
  std::string out;
  for (const auto& c : checks) {
    if (!out.empty()) out += ",";
    out += c.oracle;
  }
  return out;
}

}  // namespace

std::string write_reproducer(const std::string& corpus_dir,
                             std::uint64_t seed, const Hypergraph& shrunk,
                             const std::vector<CheckFailure>& checks) {
  fs::create_directories(corpus_dir);
  std::ostringstream name;
  name << "seed-" << seed << ".hyper";
  const fs::path path = fs::path(corpus_dir) / name.str();

  std::ostringstream body;
  body << "# hp_fuzz reproducer\n";
  body << "# seed: " << seed << " shape: "
       << shape_name(shape_of_seed(seed)) << "\n";
  for (const auto& c : checks) {
    body << "# oracle: " << c.oracle << " -- " << c.detail << "\n";
  }
  body << hyper::to_text(shrunk);

  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("hp_fuzz: cannot write reproducer: " +
                             path.string());
  }
  out << body.str();
  return path.string();
}

FuzzSummary run_fuzz(const FuzzConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  FuzzSummary summary;
  for (std::uint64_t seed = config.seed_begin; seed < config.seed_end;
       ++seed) {
    const Hypergraph h = generate(seed, config.generator);
    ++summary.cases;

    std::vector<CheckFailure> checks = run_all_oracles(h, config.oracles);
    ++summary.oracle_checks;
    const bool structural_failure = !checks.empty();

    if (config.mutation_trials > 0) {
      // Distinct stream from the generator's so adding oracles never
      // perturbs which corruptions a seed exercises.
      Rng mutation_rng{seed ^ 0xda3e39cb94b95bdbULL};
      auto mutated =
          check_mutated_loads(h, mutation_rng, config.mutation_trials);
      // 4 serialization formats x trials per format.
      summary.mutation_trials +=
          static_cast<count_t>(config.mutation_trials) * 4;
      checks.insert(checks.end(), mutated.begin(), mutated.end());
    }

    if (checks.empty()) {
      if (config.verbose) {
        std::fprintf(stderr, "hp_fuzz: seed %llu (%s) ok -- %s\n",
                     static_cast<unsigned long long>(seed),
                     shape_name(shape_of_seed(seed)), describe(h).c_str());
      }
      continue;
    }

    FuzzFailure failure;
    failure.seed = seed;
    failure.source = "generated";
    failure.checks = checks;

    // Mutated-load failures depend on the corrupted bytes, not on the
    // instance alone; only structural failures shrink meaningfully.
    Hypergraph witness = h;
    if (structural_failure && config.shrink_failures) {
      const CheckOptions& oracles = config.oracles;
      witness = shrink(h, [&oracles](const Hypergraph& candidate) {
        return !run_all_oracles(candidate, oracles).empty();
      });
      failure.checks = run_all_oracles(witness, config.oracles);
      if (failure.checks.empty()) failure.checks = checks;  // paranoia
    }
    failure.shrunk_vertices = witness.num_vertices();
    failure.shrunk_edges = witness.num_edges();

    if (structural_failure && !config.corpus_dir.empty()) {
      failure.reproducer_path = write_reproducer(
          config.corpus_dir, seed, witness, failure.checks);
    }
    std::fprintf(stderr,
                 "hp_fuzz: FAIL seed %llu (%s) oracles=[%s] shrunk to %s\n",
                 static_cast<unsigned long long>(seed),
                 shape_name(shape_of_seed(seed)),
                 join_oracles(failure.checks).c_str(),
                 describe(witness).c_str());
    summary.failures.push_back(std::move(failure));
  }
  summary.seconds = seconds_since(start);
  return summary;
}

FuzzSummary replay_corpus(const std::string& dir,
                          const CheckOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  FuzzSummary summary;
  std::vector<fs::path> files;
  if (fs::exists(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".hyper") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    ++summary.cases;
    FuzzFailure failure;
    failure.source = path.filename().string();
    try {
      const Hypergraph h = hyper::load_text(path.string());
      failure.checks = run_all_oracles(h, options);
      ++summary.oracle_checks;
    } catch (const std::exception& e) {
      failure.checks.push_back({"corpus_load", e.what()});
    }
    if (!failure.checks.empty()) {
      std::fprintf(stderr, "hp_fuzz: corpus FAIL %s oracles=[%s]\n",
                   failure.source.c_str(),
                   join_oracles(failure.checks).c_str());
      summary.failures.push_back(std::move(failure));
    }
  }
  summary.seconds = seconds_since(start);
  return summary;
}

}  // namespace hp::check
