#include "check/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "check/shrink.hpp"
#include "core/hypergraph_io.hpp"
#include "par/thread_pool.hpp"

namespace hp::check {

namespace fs = std::filesystem;
using hyper::Hypergraph;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Oracle names joined for log lines and reproducer headers.
std::string join_oracles(const std::vector<CheckFailure>& checks) {
  std::string out;
  for (const auto& c : checks) {
    if (!out.empty()) out += ",";
    out += c.oracle;
  }
  return out;
}

}  // namespace

std::string write_reproducer(const std::string& corpus_dir,
                             std::uint64_t seed, const Hypergraph& shrunk,
                             const std::vector<CheckFailure>& checks) {
  fs::create_directories(corpus_dir);
  std::ostringstream name;
  name << "seed-" << seed << ".hyper";
  const fs::path path = fs::path(corpus_dir) / name.str();

  std::ostringstream body;
  body << "# hp_fuzz reproducer\n";
  body << "# seed: " << seed << " shape: "
       << shape_name(shape_of_seed(seed)) << "\n";
  for (const auto& c : checks) {
    body << "# oracle: " << c.oracle << " -- " << c.detail << "\n";
  }
  body << hyper::to_text(shrunk);

  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("hp_fuzz: cannot write reproducer: " +
                             path.string());
  }
  out << body.str();
  return path.string();
}

FuzzSummary run_fuzz(const FuzzConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  FuzzSummary summary;
  const std::uint64_t span = config.seed_end > config.seed_begin
                                 ? config.seed_end - config.seed_begin
                                 : 0;
  const index_t n = static_cast<index_t>(span);

  // Seeds fan out across the shared pool. Every seed derives its own
  // RNG streams from the seed value alone, and each case writes only
  // its slot in `results`, so the outcome is identical under any lane
  // count or schedule -- the merge below re-establishes seed order for
  // the summary and the FAIL log lines. Only verbose per-case progress
  // lines interleave (serialized by `log_mutex`, order unspecified).
  struct CaseResult {
    bool failed = false;
    count_t mutation_trials = 0;
    FuzzFailure failure;
    std::string witness_desc;
  };
  std::vector<CaseResult> results(n);
  std::mutex log_mutex;

  par::parallel_for(0, n, /*grain=*/1, [&](index_t begin, index_t end,
                                           int /*lane*/) {
    for (index_t i = begin; i < end; ++i) {
      const std::uint64_t seed = config.seed_begin + i;
      CaseResult& slot = results[i];
      const Hypergraph h = generate(seed, config.generator);

      std::vector<CheckFailure> checks = run_all_oracles(h, config.oracles);
      const bool structural_failure = !checks.empty();

      if (config.mutation_trials > 0) {
        // Distinct stream from the generator's so adding oracles never
        // perturbs which corruptions a seed exercises.
        Rng mutation_rng{seed ^ 0xda3e39cb94b95bdbULL};
        auto mutated =
            check_mutated_loads(h, mutation_rng, config.mutation_trials);
        // 4 serialization formats x trials per format.
        slot.mutation_trials =
            static_cast<count_t>(config.mutation_trials) * 4;
        checks.insert(checks.end(), mutated.begin(), mutated.end());
      }

      if (checks.empty()) {
        if (config.verbose) {
          const std::lock_guard<std::mutex> lock(log_mutex);
          std::fprintf(stderr, "hp_fuzz: seed %llu (%s) ok -- %s\n",
                       static_cast<unsigned long long>(seed),
                       shape_name(shape_of_seed(seed)), describe(h).c_str());
        }
        continue;
      }

      slot.failed = true;
      slot.failure.seed = seed;
      slot.failure.source = "generated";
      slot.failure.checks = checks;

      // Mutated-load failures depend on the corrupted bytes, not on the
      // instance alone; only structural failures shrink meaningfully.
      Hypergraph witness = h;
      if (structural_failure && config.shrink_failures) {
        const CheckOptions& oracles = config.oracles;
        witness = shrink(h, [&oracles](const Hypergraph& candidate) {
          return !run_all_oracles(candidate, oracles).empty();
        });
        slot.failure.checks = run_all_oracles(witness, config.oracles);
        if (slot.failure.checks.empty()) {
          slot.failure.checks = checks;  // paranoia
        }
      }
      slot.failure.shrunk_vertices = witness.num_vertices();
      slot.failure.shrunk_edges = witness.num_edges();
      slot.witness_desc = describe(witness);

      if (structural_failure && !config.corpus_dir.empty()) {
        // Reproducer names embed the seed, so concurrent writers never
        // collide on a path.
        slot.failure.reproducer_path = write_reproducer(
            config.corpus_dir, seed, witness, slot.failure.checks);
      }
    }
  });

  for (index_t i = 0; i < n; ++i) {
    CaseResult& slot = results[i];
    ++summary.cases;
    ++summary.oracle_checks;
    summary.mutation_trials += slot.mutation_trials;
    if (!slot.failed) continue;
    std::fprintf(stderr,
                 "hp_fuzz: FAIL seed %llu (%s) oracles=[%s] shrunk to %s\n",
                 static_cast<unsigned long long>(slot.failure.seed),
                 shape_name(shape_of_seed(slot.failure.seed)),
                 join_oracles(slot.failure.checks).c_str(),
                 slot.witness_desc.c_str());
    summary.failures.push_back(std::move(slot.failure));
  }
  summary.seconds = seconds_since(start);
  return summary;
}

FuzzSummary replay_corpus(const std::string& dir,
                          const CheckOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  FuzzSummary summary;
  std::vector<fs::path> files;
  if (fs::exists(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".hyper") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    ++summary.cases;
    FuzzFailure failure;
    failure.source = path.filename().string();
    try {
      const Hypergraph h = hyper::load_text(path.string());
      failure.checks = run_all_oracles(h, options);
      ++summary.oracle_checks;
    } catch (const std::exception& e) {
      failure.checks.push_back({"corpus_load", e.what()});
    }
    if (!failure.checks.empty()) {
      std::fprintf(stderr, "hp_fuzz: corpus FAIL %s oracles=[%s]\n",
                   failure.source.c_str(),
                   join_oracles(failure.checks).c_str());
      summary.failures.push_back(std::move(failure));
    }
  }
  summary.seconds = seconds_since(start);
  return summary;
}

}  // namespace hp::check
