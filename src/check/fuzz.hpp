// The fuzzing driver behind the hp_fuzz CLI and the CI smoke stage.
//
// One case = one seed: generate an adversarial instance, run the full
// oracle battery (differential core checks, algebraic invariants,
// serialization round-trips), then hammer the loaders with structured
// corruptions of the instance's own serializations. A failing case is
// greedily shrunk and written to the corpus directory as a commented
// .hyper reproducer, which replays as an ordinary test via
// replay_corpus() (wired into ctest).
//
// Everything is deterministic: seed range in, same failures out, on
// every machine -- a fuzz failure in CI is reproducible locally by
// seed alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/generator.hpp"
#include "check/oracles.hpp"

namespace hp::check {

struct FuzzConfig {
  std::uint64_t seed_begin = 0;
  std::uint64_t seed_end = 1000;  ///< exclusive
  /// Loader-corruption trials per format per case (0 disables).
  int mutation_trials = 6;
  /// Directory for shrunk reproducers; empty = don't write.
  std::string corpus_dir;
  /// Minimize failing instances before reporting/writing.
  bool shrink_failures = true;
  /// Print one line per case to stderr.
  bool verbose = false;
  GenOptions generator;
  CheckOptions oracles;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string source;           ///< "generated" or the corpus file name
  std::vector<CheckFailure> checks;
  std::string reproducer_path;  ///< empty if none was written
  /// Shrunk instance size (generated failures only).
  index_t shrunk_vertices = 0;
  index_t shrunk_edges = 0;
};

struct FuzzSummary {
  count_t cases = 0;             ///< instances generated / files replayed
  count_t oracle_checks = 0;     ///< oracle batteries executed
  count_t mutation_trials = 0;   ///< loader-corruption parses attempted
  std::vector<FuzzFailure> failures;
  double seconds = 0.0;

  bool ok() const { return failures.empty(); }
};

/// Sweep [seed_begin, seed_end); returns every failure found.
FuzzSummary run_fuzz(const FuzzConfig& config);

/// Re-run the oracle battery on every .hyper reproducer in `dir`
/// (sorted by name; missing directory = zero cases, not an error).
FuzzSummary replay_corpus(const std::string& dir,
                          const CheckOptions& options = {});

/// Write a shrunk reproducer with provenance comments; returns the
/// path. The file parses with hyper::load_text (comments are skipped).
std::string write_reproducer(const std::string& corpus_dir,
                             std::uint64_t seed,
                             const hyper::Hypergraph& shrunk,
                             const std::vector<CheckFailure>& checks);

}  // namespace hp::check
