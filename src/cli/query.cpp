#include "cli/query.hpp"

#include <ostream>

#include "bio/paper_report.hpp"
#include "core/cover.hpp"
#include "core/hypergraph_io.hpp"
#include "core/kcore.hpp"
#include "core/matching.hpp"
#include "core/multicover.hpp"
#include "core/smallworld.hpp"
#include "core/soverlap.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hp::cli {

void maybe_context_stats(const Args& args,
                         const hyper::AnalysisContext& context,
                         std::ostream& out) {
  if (args.get_bool("context-stats", false)) {
    out << '\n' << hyper::to_string(context.stats());
  }
}

namespace {

int query_stats(QuerySession& session, const Args& args, std::ostream& out) {
  const hyper::AnalysisContext& ctx = session.context;
  out << hyper::to_string(ctx.summary());
  if (args.get_bool("paths", false)) {
    const hyper::HyperPathSummary& paths = ctx.paths();
    out << "diameter                  : " << paths.diameter << '\n'
        << "average path length       : " << paths.average_length << '\n';
  }
  const PowerLawFit fit =
      hyper::vertex_degree_power_law(ctx.vertex_degree_histogram());
  out << "degree power-law exponent : " << fit.gamma
      << " (R^2 = " << fit.r_squared << ")\n";
  maybe_context_stats(args, ctx, out);
  return 0;
}

int query_core(QuerySession& session, const Args& args, std::ostream& out) {
  const hyper::AnalysisContext& ctx = session.context;
  Timer timer;
  const hyper::HyperCoreResult& cores = ctx.cores();
  out << "core decomposition in " << format_duration(timer.seconds())
      << "\n\nk-core ladder (k, vertices, hyperedges):\n";
  for (std::size_t k = 0; k < cores.level_vertices.size(); ++k) {
    out << "  " << k << "  " << cores.level_vertices[k] << "  "
        << cores.level_edges[k] << '\n';
  }
  const index_t k = static_cast<index_t>(
      args.get_int("k", static_cast<std::int64_t>(cores.max_core)));
  const auto members = cores.core_vertices(k);
  out << "\n" << k << "-core vertices (" << members.size() << "):";
  const std::size_t limit =
      static_cast<std::size_t>(args.get_int("limit", 30));
  for (std::size_t i = 0; i < members.size() && i < limit; ++i) {
    out << ' ' << session.data.proteins.name_of(members[i]);
  }
  if (members.size() > limit) out << " ...";
  out << '\n';
  if (args.get_bool("peel-stats", false)) {
    out << "\npeel substrate counters:\n"
        << hyper::to_string(ctx.core_peel_stats());
  }
  if (args.has("out")) {
    const hyper::SubHypergraph core =
        hyper::extract_core(ctx.hypergraph(), cores, k);
    hyper::save_text(core.hypergraph, args.get("out", "core.hyper"));
    out << "wrote " << args.get("out", "core.hyper") << '\n';
  }
  maybe_context_stats(args, ctx, out);
  return 0;
}

int query_cover(QuerySession& session, const Args& args, std::ostream& out) {
  const hyper::Hypergraph& h = session.context.hypergraph();
  const std::string weighting = args.get("weights", "unit");
  std::vector<double> weights;
  if (weighting == "unit") {
    weights = hyper::unit_weights(h);
  } else if (weighting == "deg2") {
    weights = hyper::degree_squared_weights(h);
  } else {
    throw InvalidInputError{"--weights must be 'unit' or 'deg2'"};
  }

  const index_t r = static_cast<index_t>(args.get_int("multicover", 1));
  std::vector<index_t> cover;
  double avg_degree = 0.0;
  if (r <= 1) {
    const hyper::CoverResult result = hyper::greedy_vertex_cover(h, weights);
    cover = result.vertices;
    avg_degree = result.average_degree;
  } else {
    const hyper::MulticoverResult result =
        hyper::greedy_multicover(h, weights, r);
    cover = result.vertices;
    avg_degree = result.average_degree;
    if (!result.clamped_edges.empty()) {
      out << result.clamped_edges.size()
          << " hyperedges smaller than the requirement were clamped\n";
    }
  }
  out << "cover: " << cover.size() << " vertices, average degree "
      << avg_degree << '\n';
  const std::size_t limit =
      static_cast<std::size_t>(args.get_int("limit", 30));
  for (std::size_t i = 0; i < cover.size() && i < limit; ++i) {
    out << ' ' << session.data.proteins.name_of(cover[i]);
  }
  if (cover.size() > limit) out << " ...";
  out << '\n';
  maybe_context_stats(args, session.context, out);
  return 0;
}

int query_match(QuerySession& session, const Args& args, std::ostream& out) {
  const hyper::MatchingResult m =
      hyper::greedy_matching(session.context.hypergraph());
  out << "maximal matching: " << m.edges.size()
      << " pairwise-disjoint hyperedges (lower bound on any vertex "
         "cover)\n";
  const std::size_t limit =
      static_cast<std::size_t>(args.get_int("limit", 20));
  for (std::size_t i = 0; i < m.edges.size() && i < limit; ++i) {
    out << ' ' << session.data.complex_names[m.edges[i]];
  }
  if (m.edges.size() > limit) out << " ...";
  out << '\n';
  maybe_context_stats(args, session.context, out);
  return 0;
}

int query_soverlap(QuerySession& session, const Args& args,
                   std::ostream& out) {
  const hyper::AnalysisContext& ctx = session.context;
  const hyper::OverlapTable& table = ctx.overlaps();
  const index_t s_max = hyper::max_meaningful_s(table);
  out << "max meaningful s: " << s_max
      << "\n s  components  largest  edges\n";
  for (index_t s = 1; s <= s_max; ++s) {
    const hyper::SComponents comp = hyper::s_components(table, s);
    index_t largest = 0;
    if (comp.count > 0) largest = comp.sizes[comp.largest()];
    out << ' ' << s << "  " << comp.count << "  " << largest << "  "
        << hyper::s_intersection_graph(table, s).num_edges() << '\n';
  }
  maybe_context_stats(args, ctx, out);
  return 0;
}

int query_smallworld(QuerySession& session, const Args& args,
                     std::ostream& out) {
  const hyper::AnalysisContext& ctx = session.context;
  Rng rng{static_cast<std::uint64_t>(args.get_int("seed", 1))};
  const hyper::SmallWorldReport r =
      hyper::small_world_report(ctx.hypergraph(), ctx.paths(), rng);
  out << "observed:   diameter " << r.observed.diameter
      << ", average path length " << r.observed.average_length << '\n'
      << "null model: diameter " << r.null_model.diameter
      << ", average path length " << r.null_model.average_length << '\n'
      << "ratio observed/null: " << r.path_ratio << '\n';
  maybe_context_stats(args, ctx, out);
  return 0;
}

int query_report(QuerySession& session, const Args& args, std::ostream& out) {
  // The report touches nearly every artifact; build the independent
  // ones concurrently on the shared pool before the serial rendering.
  session.context.prefetch();
  const bio::PaperReport report = bio::analyze(session.context);
  const bio::PaperReference reference = args.get_bool("no-paper", false)
                                            ? bio::PaperReference{}
                                            : bio::PaperReference::cellzome();
  out << bio::render_report(report, reference);
  maybe_context_stats(args, session.context, out);
  return 0;
}

struct QueryCommand {
  const char* name;
  int (*fn)(QuerySession&, const Args&, std::ostream&);
};

constexpr QueryCommand kQueryCommands[] = {
    {"stats", &query_stats},       {"report", &query_report},
    {"core", &query_core},         {"cover", &query_cover},
    {"match", &query_match},       {"soverlap", &query_soverlap},
    {"smallworld", &query_smallworld},
};

}  // namespace

const std::vector<std::string>& query_commands() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const QueryCommand& cmd : kQueryCommands) v.emplace_back(cmd.name);
    return v;
  }();
  return names;
}

bool is_query_command(const std::string& command) {
  for (const QueryCommand& cmd : kQueryCommands) {
    if (command == cmd.name) return true;
  }
  return false;
}

int run_query(QuerySession& session, const std::string& command,
              const Args& args, std::ostream& out) {
  for (const QueryCommand& cmd : kQueryCommands) {
    if (command == cmd.name) return cmd.fn(session, args, out);
  }
  throw InvalidInputError{"'" + command + "' is not a query command"};
}

}  // namespace hp::cli
