// Command implementations for the `hyperproteome` command-line tool.
//
// Kept as a library so the unit tests can drive each command directly;
// tools/hp_cli_main.cpp is a thin argv wrapper. Every command writes
// human-readable output to the given stream and returns a process exit
// code (0 = success). Errors print a message and return 1 rather than
// throwing across main.
//
// Input formats are selected by file extension:
//   .hyper        hp-hyper text format (hypergraph_io)
//   .hgr          hMETIS / PaToH
//   .hpb          binary hypergraph (binary_io)
//   .hps          mmap'd snapshot (core/snapshot; zero-copy open)
//   .mtx          MatrixMarket (converted via the row-net model)
//   .tsv / .txt   protein-complex membership table (names preserved)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bio/complex_io.hpp"
#include "util/args.hpp"

namespace hp::cli {

/// Load any supported file into a ComplexDataset. Formats without
/// protein names get synthetic "v<i>" / "f<i>" names so every command
/// can report names uniformly. Throws on parse/I-O errors.
bio::ComplexDataset load_dataset(const std::string& path);

/// Save a dataset to any supported output format (chosen by
/// extension). Complex-table output preserves names; the rest discard
/// them.
void save_dataset(const bio::ComplexDataset& data, const std::string& path);

int cmd_stats(const Args& args, std::ostream& out);
int cmd_report(const Args& args, std::ostream& out);
int cmd_core(const Args& args, std::ostream& out);
int cmd_cover(const Args& args, std::ostream& out);
int cmd_match(const Args& args, std::ostream& out);
int cmd_soverlap(const Args& args, std::ostream& out);
int cmd_smallworld(const Args& args, std::ostream& out);
int cmd_convert(const Args& args, std::ostream& out);
int cmd_generate(const Args& args, std::ostream& out);
int cmd_pajek(const Args& args, std::ostream& out);
int cmd_render(const Args& args, std::ostream& out);
int cmd_mutate(const Args& args, std::ostream& out);
int cmd_snapshot(const Args& args, std::ostream& out);

/// Extension point for layers above the core CLI library. The analysis
/// server (src/serve/) registers its `serve` and `query` subcommands
/// through this hook from the binary's main(), so hp_cli never links
/// hp_serve (the dependency goes the other way: hp_serve reuses the
/// query layer). `span` must be a string literal ("cli.serve") -- the
/// tracer stores the pointer. Registering an existing name replaces it.
/// `usage_blurb` is appended to usage(); end it with a newline.
void register_command(const std::string& name, const char* span,
                      int (*fn)(const Args&, std::ostream&),
                      const std::string& usage_blurb);

/// Dispatch on the first positional argument (built-in commands first,
/// then register_command() entries); prints usage on unknown/missing
/// commands and returns 2.
int run(const Args& args, std::ostream& out);

/// The usage text.
std::string usage();

}  // namespace hp::cli
