// The shared query layer between one-shot hp_cli invocations and the
// long-lived analysis server (src/serve/).
//
// Every read-only analysis command (stats, report, core, cover, match,
// soverlap, smallworld) is implemented once, against a QuerySession --
// a loaded dataset plus its AnalysisContext artifact cache. The CLI
// wraps each in a fresh per-process session; the server keeps sessions
// alive in a keyed LRU pool (serve::ContextPool) and answers repeated
// queries from the warm cache. Because both paths execute the same
// run_query code, a server reply is byte-identical to the one-shot CLI
// output for the same command and dataset (the golden test in
// tests/serve/ pins this).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bio/complex_io.hpp"
#include "core/context/analysis_context.hpp"
#include "util/args.hpp"

namespace hp::cli {

/// One loaded dataset and its shared derived-artifact cache. The
/// context owns the hypergraph (moved out of the dataset); protein and
/// complex names stay behind in `data`. Non-copyable/movable: the
/// AnalysisContext slot mutexes pin it, so sessions live on the heap
/// when they must outlive a scope (the server pool holds
/// shared_ptr<QuerySession>).
struct QuerySession {
  bio::ComplexDataset data;
  hyper::AnalysisContext context;

  explicit QuerySession(bio::ComplexDataset loaded)
      : data(std::move(loaded)), context(std::move(data.hypergraph)) {}

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;
};

/// The commands servable from a shared session: read-only analyses
/// that write nothing but their output stream. (convert/generate/
/// mutate/pajek/render/snapshot touch the filesystem or mutate state
/// and stay one-shot only.)
const std::vector<std::string>& query_commands();
bool is_query_command(const std::string& command);

/// Execute one query command against the session. `args` supplies the
/// command's flags (--k, --limit, --weights, ...); positional
/// arguments are ignored (the session already carries the dataset).
/// Returns the command's exit code; throws InvalidInputError on an
/// unknown command or bad flag values.
int run_query(QuerySession& session, const std::string& command,
              const Args& args, std::ostream& out);

/// Honor the global --context-stats flag: print the artifact counters
/// of the session's shared context.
void maybe_context_stats(const Args& args,
                         const hyper::AnalysisContext& context,
                         std::ostream& out);

}  // namespace hp::cli
