// Thin argv wrapper around the hp::cli command library. The analysis
// server's subcommands (serve/query) are registered here, at the binary
// boundary, so the hp_cli library itself never depends on hp_serve.
#include <iostream>

#include "cli/commands.hpp"
#include "serve/serve_commands.hpp"

int main(int argc, char** argv) {
  hp::serve::register_cli_commands();
  const hp::Args args{argc, argv};
  if (args.positional().size() > 0 && args.positional()[0] == "serve") {
    hp::serve::stop_on_signals();
  }
  return hp::cli::run(args, std::cout);
}
