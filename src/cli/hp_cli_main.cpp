// Thin argv wrapper around the hp::cli command library.
#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  return hp::cli::run(args, std::cout);
}
