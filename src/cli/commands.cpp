#include "cli/commands.hpp"

#include <cstdlib>
#include <exception>
#include <fstream>
#include <ostream>
#include <sstream>

#include "bio/cellzome_synth.hpp"
#include "bio/paper_report.hpp"
#include "check/mutation.hpp"
#include "cli/query.hpp"
#include "core/binary_io.hpp"
#include "core/context/analysis_context.hpp"
#include "core/mutate/mutable_context.hpp"
#include "core/cover.hpp"
#include "core/hypergraph_io.hpp"
#include "core/kcore.hpp"
#include "core/matching.hpp"
#include "core/multicover.hpp"
#include "core/pajek.hpp"
#include "core/smallworld.hpp"
#include "core/snapshot/snapshot.hpp"
#include "core/soverlap.hpp"
#include "core/svg.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "mm/matrix_market.hpp"
#include "mm/mm_to_hypergraph.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/stringutil.hpp"
#include "util/timer.hpp"

namespace hp::cli {

namespace {

enum class Format {
  kHyper,
  kHmetis,
  kBinary,
  kSnapshot,
  kMatrixMarket,
  kComplexTable
};

Format detect_format(const std::string& path) {
  const auto dot = path.rfind('.');
  const std::string ext =
      dot == std::string::npos ? "" : to_lower(path.substr(dot + 1));
  if (ext == "hyper") return Format::kHyper;
  if (ext == "hgr") return Format::kHmetis;
  if (ext == "hpb") return Format::kBinary;
  if (ext == "hps") return Format::kSnapshot;
  if (ext == "mtx") return Format::kMatrixMarket;
  if (ext == "tsv" || ext == "txt") return Format::kComplexTable;
  throw InvalidInputError{
      "unrecognized file extension on '" + path +
      "' (expected .hyper, .hgr, .hpb, .hps, .mtx, .tsv, .txt)"};
}

/// Wrap a bare hypergraph in a dataset with generated names.
bio::ComplexDataset wrap(hyper::Hypergraph h) {
  bio::ComplexDataset data;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    std::string name = "v";
    name += std::to_string(v);
    data.proteins.intern(name);
  }
  for (index_t e = 0; e < h.num_edges(); ++e) {
    std::string name = "f";
    name += std::to_string(e);
    data.complex_names.push_back(std::move(name));
  }
  data.hypergraph = std::move(h);
  return data;
}

/// The one positional input file every analysis command takes.
std::string input_path(const Args& args) {
  HP_REQUIRE(args.positional().size() >= 2,
             "expected an input file after the command");
  return args.positional()[1];
}

/// Every analysis command runs off one shared artifact cache -- a
/// QuerySession (cli/query.hpp), the same type the analysis server
/// pools across requests. One-shot invocations wrap it here so the
/// metrics publish on teardown.
struct Session {
  QuerySession q;

  explicit Session(bio::ComplexDataset loaded) : q(std::move(loaded)) {}

  // Publishing at teardown means --metrics output includes the cache
  // counters of whatever the command actually built.
  ~Session() { hyper::publish_metrics(q.context.stats()); }
};

Session open_session(const Args& args) {
  return Session{load_dataset(input_path(args))};
}

/// One-shot wrapper: fresh session, shared query implementation
/// (cli/query.cpp), metrics published when the session unwinds.
int run_one_shot_query(const char* command, const Args& args,
                       std::ostream& out) {
  Session session = open_session(args);
  return run_query(session.q, command, args, out);
}

}  // namespace

bio::ComplexDataset load_dataset(const std::string& path) {
  HP_TRACE_SPAN("cli.load_dataset");
  bio::ComplexDataset data = [&] {
    switch (detect_format(path)) {
      case Format::kHyper:
        return wrap(hyper::load_text(path));
      case Format::kHmetis:
        return wrap(hyper::load_hmetis(path));
      case Format::kBinary:
        return wrap(hyper::load_binary(path));
      case Format::kSnapshot:
        return wrap(hyper::snapshot::open(path));
      case Format::kMatrixMarket:
        return wrap(mm::row_net_hypergraph(mm::load_matrix_market(path)));
      case Format::kComplexTable:
        return bio::load_complex_table(path);
    }
    throw std::logic_error{"unreachable"};
  }();
  // Every loader's output goes through the structural validator, so a
  // malformed file fails here, with its name, instead of corrupting an
  // analysis downstream.
  try {
    HP_TRACE_SPAN("cli.validate");
    hyper::validate(data.hypergraph);
  } catch (const InvalidInputError& error) {
    std::string message = "invalid hypergraph loaded from '";
    message += path;
    message += "': ";
    message += error.what();
    throw InvalidInputError{message};
  }
  return data;
}

void save_dataset(const bio::ComplexDataset& data, const std::string& path) {
  switch (detect_format(path)) {
    case Format::kHyper:
      hyper::save_text(data.hypergraph, path);
      return;
    case Format::kHmetis:
      hyper::save_hmetis(data.hypergraph, path);
      return;
    case Format::kBinary:
      hyper::save_binary(data.hypergraph, path);
      return;
    case Format::kSnapshot:
      hyper::snapshot::save(data.hypergraph, path);
      return;
    case Format::kComplexTable:
      bio::save_complex_table(data, path);
      return;
    case Format::kMatrixMarket:
      throw InvalidInputError{
          "writing MatrixMarket from a hypergraph is not supported (the "
          "row-net conversion is lossy); choose .hyper, .hgr, .hpb, .hps "
          "or .tsv"};
  }
}

int cmd_stats(const Args& args, std::ostream& out) {
  return run_one_shot_query("stats", args, out);
}

int cmd_core(const Args& args, std::ostream& out) {
  return run_one_shot_query("core", args, out);
}

int cmd_cover(const Args& args, std::ostream& out) {
  return run_one_shot_query("cover", args, out);
}

int cmd_match(const Args& args, std::ostream& out) {
  return run_one_shot_query("match", args, out);
}

int cmd_soverlap(const Args& args, std::ostream& out) {
  return run_one_shot_query("soverlap", args, out);
}

int cmd_smallworld(const Args& args, std::ostream& out) {
  return run_one_shot_query("smallworld", args, out);
}

int cmd_convert(const Args& args, std::ostream& out) {
  HP_REQUIRE(args.positional().size() >= 3,
             "convert needs an input and an output file");
  const bio::ComplexDataset data = load_dataset(args.positional()[1]);
  save_dataset(data, args.positional()[2]);
  out << "wrote " << args.positional()[2] << " (" <<
      data.hypergraph.num_vertices() << " vertices, "
      << data.hypergraph.num_edges() << " hyperedges)\n";
  return 0;
}

int cmd_generate(const Args& args, std::ostream& out) {
  HP_REQUIRE(args.positional().size() >= 2,
             "generate needs an output file");
  bio::CellzomeParams params;
  if (args.has("proteins")) {
    params = bio::scaled_cellzome_params(
        static_cast<index_t>(args.get_int("proteins", 1361)));
  }
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bio::ComplexDataset data = bio::cellzome_surrogate(params);
  save_dataset(data, args.positional()[1]);
  out << "wrote " << args.positional()[1] << " ("
      << data.hypergraph.num_vertices() << " proteins, "
      << data.hypergraph.num_edges() << " complexes)\n";
  return 0;
}

int cmd_pajek(const Args& args, std::ostream& out) {
  HP_REQUIRE(args.positional().size() >= 3,
             "pajek needs an input file and an output prefix");
  Session session{load_dataset(args.positional()[1])};
  const hyper::AnalysisContext& ctx = session.q.context;
  const std::string prefix = args.positional()[2];
  const hyper::Hypergraph& h = ctx.hypergraph();
  const hyper::HyperCoreResult& cores = ctx.cores();
  const index_t k = static_cast<index_t>(
      args.get_int("k", static_cast<std::int64_t>(cores.max_core)));

  hyper::save_pajek(
      hyper::to_pajek_bipartite(h, session.q.data.proteins.names(),
                                session.q.data.complex_names),
      prefix + ".net");
  hyper::save_pajek(
      hyper::to_pajek_partition(hyper::fig3_classes(
          h, cores.vertex_core, cores.edge_core, k)),
      prefix + ".clu");
  out << "wrote " << prefix << ".net and " << prefix << ".clu ("
      << k << "-core coloring)\n";
  maybe_context_stats(args, ctx, out);
  return 0;
}

int cmd_report(const Args& args, std::ostream& out) {
  return run_one_shot_query("report", args, out);
}

int cmd_render(const Args& args, std::ostream& out) {
  HP_REQUIRE(args.positional().size() >= 3,
             "render needs an input file and an output .svg path");
  Session session{load_dataset(args.positional()[1])};
  const hyper::AnalysisContext& ctx = session.q.context;
  const hyper::HyperCoreResult& cores = ctx.cores();
  const index_t k = static_cast<index_t>(
      args.get_int("k", static_cast<std::int64_t>(cores.max_core)));
  hyper::LayoutParams layout;
  layout.iterations = static_cast<int>(args.get_int("iterations", 60));
  layout.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  hyper::save_svg(hyper::render_fig3_svg(ctx.hypergraph(), cores.vertex_core,
                                         cores.edge_core, k, layout),
                  args.positional()[2]);
  out << "wrote " << args.positional()[2] << " (" << k
      << "-core highlighted)\n";
  maybe_context_stats(args, ctx, out);
  return 0;
}

namespace {

/// Parse one mutation op per line, in the exact format printed by
/// check::to_string(MutationOp) — so shrunk fuzz traces can be replayed
/// verbatim. Blank lines and '#' comments are skipped.
std::vector<check::MutationOp> load_mutation_script(const std::string& path) {
  std::ifstream in(path);
  HP_REQUIRE(in.good(), "cannot open mutation script '" + path + "'");
  std::vector<check::MutationOp> ops;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind) || kind[0] == '#') continue;
    check::MutationOp op;
    const auto parse_id = [&](const char* what) {
      std::uint64_t id = 0;
      HP_REQUIRE(static_cast<bool>(fields >> id),
                 "script line " + std::to_string(line_no) + ": " + kind +
                     " needs a " + what + " id");
      return static_cast<index_t>(id);
    };
    if (kind == "add-vertex") {
      op.kind = check::MutationOp::Kind::kAddVertex;
    } else if (kind == "remove-vertex") {
      op.kind = check::MutationOp::Kind::kRemoveVertex;
      op.target = parse_id("vertex");
    } else if (kind == "add-edge") {
      op.kind = check::MutationOp::Kind::kAddEdge;
      std::uint64_t member = 0;
      while (fields >> member) {
        op.members.push_back(static_cast<index_t>(member));
      }
      HP_REQUIRE(!op.members.empty(),
                 "script line " + std::to_string(line_no) +
                     ": add-edge needs at least one member");
    } else if (kind == "remove-edge") {
      op.kind = check::MutationOp::Kind::kRemoveEdge;
      op.target = parse_id("edge");
    } else {
      throw InvalidInputError{"script line " + std::to_string(line_no) +
                              ": unknown op '" + kind + "'"};
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Apply one op to the editable graph; returns false when the op is
/// invalid in the current state (dangling/dead ids), which mirrors the
/// skip semantics of the fuzz oracle rather than aborting the batch.
bool apply_mutation(hyper::MutableHypergraph& graph,
                    const check::MutationOp& op) {
  using Kind = check::MutationOp::Kind;
  try {
    switch (op.kind) {
      case Kind::kAddVertex:
        graph.add_vertex();
        return true;
      case Kind::kRemoveVertex:
        graph.remove_vertex(op.target);
        return true;
      case Kind::kAddEdge:
        graph.add_hyperedge(op.members);
        return true;
      case Kind::kRemoveEdge:
        graph.remove_hyperedge(op.target);
        return true;
    }
  } catch (const InvalidInputError&) {
    return false;
  }
  return false;
}

}  // namespace

int cmd_mutate(const Args& args, std::ostream& out) {
  bio::ComplexDataset data = load_dataset(input_path(args));
  hyper::MutableAnalysisContext ctx{data.hypergraph};

  std::vector<check::MutationOp> ops;
  if (args.has("script")) {
    ops = load_mutation_script(args.get("script", ""));
  } else {
    check::MutationTraceOptions options;
    options.num_ops = static_cast<int>(args.get_int("ops", 64));
    ops = check::generate_trace(
        data.hypergraph,
        static_cast<std::uint64_t>(args.get_int("seed", 42)), options);
  }

  // Warm the cheap tier so the batch loop below exercises incremental
  // maintenance rather than repeated cold builds.
  ctx.vertex_degrees();
  ctx.vertex_degree_histogram();
  ctx.edge_size_histogram();
  ctx.components();
  ctx.cores();

  const std::size_t batch =
      static_cast<std::size_t>(args.get_int("batch", 1));
  HP_REQUIRE(batch >= 1, "--batch must be at least 1");
  std::size_t applied = 0;
  std::size_t skipped = 0;
  Timer timer;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (apply_mutation(ctx.graph(), ops[i])) {
      ++applied;
    } else {
      ++skipped;
    }
    if ((i + 1) % batch == 0 || i + 1 == ops.size()) {
      ctx.apply();
      ctx.cores();
    }
  }
  const double seconds = timer.seconds();

  const hyper::MutableHypergraph& graph = ctx.graph();
  out << "applied " << applied << " mutations (" << skipped
      << " skipped as invalid) in " << format_duration(seconds) << '\n'
      << "version        : " << graph.version() << '\n'
      << "live vertices  : " << graph.live_vertices() << '\n'
      << "live hyperedges: " << graph.live_edges() << '\n'
      << "live pins      : " << graph.live_pins() << '\n';

  const hyper::HyperCoreResult& cores = ctx.cores();
  out << "\nk-core ladder (k, vertices, hyperedges):\n";
  for (std::size_t k = 0; k < cores.level_vertices.size(); ++k) {
    out << "  " << k << "  " << cores.level_vertices[k] << "  "
        << cores.level_edges[k] << '\n';
  }

  const hyper::MutableAnalysisContext::ApplyStats& stats = ctx.apply_stats();
  out << "\nincremental maintenance:\n"
      << "  applies              : " << stats.applies << '\n'
      << "  mutations absorbed   : " << stats.mutations << '\n'
      << "  incremental updates  : " << stats.incremental_updates << '\n'
      << "  component rebuilds   : " << stats.component_rebuilds << '\n'
      << "  core repairs         : " << stats.core_repairs << '\n'
      << "  core repair fallbacks: " << stats.core_repair_fallbacks << '\n'
      << "  slot invalidations   : " << stats.slot_invalidations << '\n';

  if (args.get_bool("peel-stats", false)) {
    out << "\npeel substrate counters:\n"
        << hyper::to_string(ctx.core_peel_stats());
  }
  if (args.has("out")) {
    const std::string path = args.get("out", "mutated.hyper");
    hyper::save_text(ctx.snapshot().hypergraph, path);
    out << "\nwrote " << path << '\n';
  }
  if (args.get_bool("context-stats", false)) {
    out << '\n' << hyper::to_string(ctx.stats());
  }
  hyper::publish_metrics(ctx.stats());
  return 0;
}

namespace {

hyper::snapshot::SaveOptions snapshot_options(const Args& args) {
  hyper::snapshot::SaveOptions options;
  const std::string codec = args.get("codec", "nop");
  if (codec == "nop") {
    options.codec = hyper::snapshot::Codec::kNone;
  } else if (codec == "varint") {
    options.codec = hyper::snapshot::Codec::kVarint;
  } else {
    throw InvalidInputError{"--codec must be 'nop' or 'varint'"};
  }
  return options;
}

void print_snapshot_info(const hyper::snapshot::Info& info,
                         const std::string& path, std::ostream& out) {
  out << path << ":\n"
      << "  format version : " << info.version << '\n'
      << "  codec          : "
      << (info.codec == hyper::snapshot::Codec::kVarint ? "varint" : "nop")
      << '\n'
      << "  vertices       : " << info.num_vertices << '\n'
      << "  hyperedges     : " << info.num_edges << '\n'
      << "  pins           : " << info.num_pins << '\n'
      << "  file bytes     : " << info.file_bytes << '\n'
      << "  section bytes  : " << info.section_bytes << '\n';
}

}  // namespace

int cmd_snapshot(const Args& args, std::ostream& out) {
  HP_REQUIRE(args.positional().size() >= 2,
             "snapshot needs a subcommand: convert, info or verify");
  const std::string sub = args.positional()[1];
  if (sub == "convert") {
    HP_REQUIRE(args.positional().size() >= 4,
               "snapshot convert needs an input and an output file");
    const bio::ComplexDataset data = load_dataset(args.positional()[2]);
    const std::string& out_path = args.positional()[3];
    hyper::snapshot::save(data.hypergraph, out_path, snapshot_options(args));
    const hyper::snapshot::Info info = hyper::snapshot::info(out_path);
    out << "wrote " << out_path << " (" << info.num_vertices
        << " vertices, " << info.num_edges << " hyperedges, "
        << info.file_bytes << " bytes, codec "
        << (info.codec == hyper::snapshot::Codec::kVarint ? "varint" : "nop")
        << ")\n";
    return 0;
  }
  if (sub == "info") {
    HP_REQUIRE(args.positional().size() >= 3,
               "snapshot info needs a snapshot file");
    print_snapshot_info(hyper::snapshot::info(args.positional()[2]),
                        args.positional()[2], out);
    return 0;
  }
  if (sub == "verify") {
    HP_REQUIRE(args.positional().size() >= 3,
               "snapshot verify needs a snapshot file");
    hyper::snapshot::verify(args.positional()[2]);
    out << args.positional()[2] << ": snapshot ok\n";
    return 0;
  }
  throw InvalidInputError{"unknown snapshot subcommand '" + sub +
                          "' (expected convert, info or verify)"};
}

namespace {

/// Commands added by register_command(): the analysis server's `serve`
/// and `query` live here. Kept separate from the constexpr built-in
/// table; looked up after it.
struct RegisteredCommand {
  std::string name;
  const char* span;
  int (*fn)(const Args&, std::ostream&);
  std::string blurb;
};

std::vector<RegisteredCommand>& registered_commands() {
  static std::vector<RegisteredCommand> commands;
  return commands;
}

}  // namespace

void register_command(const std::string& name, const char* span,
                      int (*fn)(const Args&, std::ostream&),
                      const std::string& usage_blurb) {
  HP_REQUIRE(!name.empty() && span != nullptr && fn != nullptr,
             "register_command: name, span and fn are required");
  for (RegisteredCommand& cmd : registered_commands()) {
    if (cmd.name == name) {
      cmd = RegisteredCommand{name, span, fn, usage_blurb};
      return;
    }
  }
  registered_commands().push_back(
      RegisteredCommand{name, span, fn, usage_blurb});
}

std::string usage() {
  std::string text =
      "usage: hp_cli <command> [args]\n"
         "\n"
         "commands:\n"
         "  stats <file> [--paths]                 structural summary\n"
         "  report <file> [--no-paper]             full paper-vs-measured "
         "table\n"
         "  core <file> [--k K] [--out f.hyper] [--peel-stats]\n"
         "                                         k-core decomposition\n"
         "  cover <file> [--weights unit|deg2] [--multicover R]\n"
         "                                         greedy bait cover\n"
         "  match <file>                           maximal matching\n"
         "  soverlap <file>                        s-overlap census\n"
         "  smallworld <file> [--seed N]           null-model comparison\n"
         "  convert <in> <out>                     format conversion\n"
         "  generate <out> [--seed N] [--proteins N]  calibrated surrogate\n"
         "                                         (or scaled to N "
         "proteins)\n"
         "  pajek <file> <prefix> [--k K]          Figure-3 style export\n"
         "  render <file> <out.svg> [--k K] [--iterations N]\n"
         "                                         offline Figure-3 SVG\n"
         "  mutate <file> [--ops N] [--seed S] [--batch B]\n"
         "         [--script ops.txt] [--out f.hyper] [--peel-stats]\n"
         "                                         incremental mutation "
         "replay\n"
         "  snapshot convert <in> <out.hps> [--codec nop|varint]\n"
         "  snapshot info <f.hps> | verify <f.hps>\n"
         "                                         mmap'd zero-copy "
         "snapshots\n"
         "\n"
         "every analysis command also accepts --context-stats: print the\n"
         "  shared derived-artifact cache counters (builds, hits, bytes)\n"
         "\n"
         "global observability flags (any command):\n"
         "  --trace out.json    record a Chrome trace (load it in\n"
         "                      chrome://tracing or Perfetto); env\n"
         "                      HP_TRACE=out.json is equivalent\n"
         "  --metrics out.json  dump the metrics registry (counters,\n"
         "                      gauges, latency histograms); env\n"
         "                      HP_METRICS=out.json is equivalent\n"
         "  --profile out.folded  sample the command with the SIGPROF\n"
         "                      CPU profiler and write folded stacks\n"
         "                      (flamegraph.pl / speedscope input); env\n"
         "                      HP_PROFILE=out.folded is equivalent\n"
         "  --metrics-interval 250ms|2s|N  flush metrics continuously\n"
         "                      from a background thread to\n"
         "                      --metrics-jsonl (default hp_metrics.jsonl)\n"
         "                      and --metrics-prom (default\n"
         "                      hp_metrics.prom, Prometheus text format);\n"
         "                      env HP_METRICS_INTERVAL etc.\n"
         "  --slow-span-ms N    log traced spans that exceed N ms (also\n"
         "                      counted in obs.slow_spans); env\n"
         "                      HP_SLOW_SPAN_MS\n"
         "\n"
         "formats by extension: .hyper (native), .hgr (hMETIS),\n"
         "  .hpb (binary), .hps (mmap'd snapshot),\n"
         "  .mtx (MatrixMarket row-net), .tsv/.txt (complex table)\n";
  for (const RegisteredCommand& cmd : registered_commands()) {
    text += cmd.blurb;
  }
  return text;
}

namespace {

/// Dispatch table. The span name is a literal (the tracer stores the
/// pointer), so each command gets a root `cli.<name>` span enclosing its
/// whole run including dataset load.
struct Command {
  const char* name;
  const char* span;
  int (*fn)(const Args&, std::ostream&);
};

constexpr Command kCommands[] = {
    {"stats", "cli.stats", &cmd_stats},
    {"report", "cli.report", &cmd_report},
    {"core", "cli.core", &cmd_core},
    {"cover", "cli.cover", &cmd_cover},
    {"match", "cli.match", &cmd_match},
    {"soverlap", "cli.soverlap", &cmd_soverlap},
    {"smallworld", "cli.smallworld", &cmd_smallworld},
    {"convert", "cli.convert", &cmd_convert},
    {"generate", "cli.generate", &cmd_generate},
    {"pajek", "cli.pajek", &cmd_pajek},
    {"render", "cli.render", &cmd_render},
    {"mutate", "cli.mutate", &cmd_mutate},
    {"snapshot", "cli.snapshot", &cmd_snapshot},
};

/// Flag with environment fallback: --trace beats HP_TRACE, etc.
std::string flag_or_env(const Args& args, const std::string& flag,
                        const char* env) {
  std::string value = args.get(flag, "");
  if (value.empty()) {
    if (const char* from_env = std::getenv(env)) value = from_env;
  }
  return value;
}

}  // namespace

int run(const Args& args, std::ostream& out) {
  if (args.positional().empty()) {
    out << usage();
    return 2;
  }
  const std::string command = args.positional()[0];

  const std::string trace_path = flag_or_env(args, "trace", "HP_TRACE");
  const std::string metrics_path = flag_or_env(args, "metrics", "HP_METRICS");
  const std::string profile_path =
      flag_or_env(args, "profile", "HP_PROFILE");
  if (!trace_path.empty()) obs::set_tracing_enabled(true);

  // Slow-span watchdog: spans longer than the threshold are logged as
  // they close (and counted in obs.slow_spans). 0 = off.
  {
    std::int64_t slow_ms = args.get_int("slow-span-ms", 0);
    if (slow_ms <= 0) {
      if (const char* env = std::getenv("HP_SLOW_SPAN_MS")) {
        slow_ms = std::strtoll(env, nullptr, 10);
      }
    }
    if (slow_ms > 0) {
      obs::set_slow_span_threshold_ns(
          static_cast<std::uint64_t>(slow_ms) * 1000000u);
    }
  }

  // Continuous metrics export: --metrics-interval / HP_METRICS_INTERVAL
  // turn on the background flusher for the duration of the command.
  std::optional<std::chrono::milliseconds> metrics_interval;
  if (args.has("metrics-interval")) {
    metrics_interval =
        obs::parse_metrics_interval(args.get("metrics-interval", ""));
    if (!metrics_interval) {
      out << "error: --metrics-interval expects '250ms', '2s' or a "
             "millisecond count\n";
      return 2;
    }
  } else {
    metrics_interval = obs::metrics_interval_from_env();
  }
  std::string jsonl_path;
  std::string prom_path;
  if (metrics_interval) {
    jsonl_path = flag_or_env(args, "metrics-jsonl", "HP_METRICS_JSONL");
    if (jsonl_path.empty()) jsonl_path = "hp_metrics.jsonl";
    prom_path = flag_or_env(args, "metrics-prom", "HP_METRICS_PROM");
    if (prom_path.empty()) prom_path = "hp_metrics.prom";
  }

  const char* span = nullptr;
  int (*fn)(const Args&, std::ostream&) = nullptr;
  for (const Command& cmd : kCommands) {
    if (command == cmd.name) {
      span = cmd.span;
      fn = cmd.fn;
      break;
    }
  }
  if (fn == nullptr) {
    for (const RegisteredCommand& cmd : registered_commands()) {
      if (command == cmd.name) {
        span = cmd.span;
        fn = cmd.fn;
        break;
      }
    }
  }
  if (fn == nullptr) {
    out << "unknown command '" << command << "'\n\n" << usage();
    return 2;
  }

  int code = 0;
  bool profiling = false;
  try {
    if (!profile_path.empty()) {
      obs::start_profiling();
      profiling = true;
    }
    if (metrics_interval) {
      obs::ExportOptions options;
      options.interval = *metrics_interval;
      options.jsonl_path = jsonl_path;
      options.prom_path = prom_path;
      obs::MetricsExporter::global().start(options);
    }
    Timer timer;
    {
      HP_TRACE_SPAN(span);
      code = fn(args, out);
    }
    obs::latency("cli.command_ns").record_ns(timer.nanoseconds());
  } catch (const std::exception& error) {
    out << "error: " << error.what() << '\n';
    code = 1;
  } catch (...) {
    out << "error: unknown exception\n";
    code = 1;
  }

  // Flush observability outputs even when the command failed: a trace,
  // profile or metrics series of a failing run is precisely when you
  // want one.
  if (profiling) {
    obs::stop_profiling();
    try {
      obs::write_folded_file(profile_path);
      out << "wrote profile " << profile_path << " ("
          << obs::profile_sample_count() << " samples, "
          << obs::profile_dropped_samples() << " dropped)\n";
    } catch (const std::exception& error) {
      out << "error: " << error.what() << '\n';
      code = 1;
    }
  }
  if (obs::MetricsExporter::global().running()) {
    obs::MetricsExporter::global().stop();  // final flush inside
    out << "wrote metrics series " << jsonl_path << " and " << prom_path
        << " (" << obs::MetricsExporter::global().flush_count()
        << " flushes)\n";
  }
  if (!trace_path.empty()) {
    try {
      obs::write_chrome_trace_file(trace_path);
      out << "wrote trace " << trace_path << '\n';
    } catch (const std::exception& error) {
      out << "error: " << error.what() << '\n';
      code = 1;
    }
  }
  if (!metrics_path.empty()) {
    try {
      obs::write_metrics_json_file(obs::Registry::global().snapshot(),
                                   metrics_path);
      out << "wrote metrics " << metrics_path << '\n';
    } catch (const std::exception& error) {
      out << "error: " << error.what() << '\n';
      code = 1;
    }
  }
  return code;
}

}  // namespace hp::cli
