// hp_fuzz -- differential fuzzing driver for the hypergraph substrate.
//
// Modes:
//   hp_fuzz --seed-range 0:1000            sweep generated instances
//   hp_fuzz --replay tests/corpus          re-check stored reproducers
//
// A sweep runs the full oracle battery (kcore vs naive vs parallel vs
// generalized cores, reduce/dual/projection algebra, loader
// round-trips) on every seeded instance plus loader-corruption trials,
// shrinks any failure, and (with --corpus DIR) writes the minimized
// reproducer. Exit status 0 = clean, 1 = at least one failure, 2 =
// usage error. Fully deterministic in the seed range.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "check/fuzz.hpp"
#include "util/args.hpp"
#include "util/common.hpp"

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--seed-range A:B] [--corpus DIR] [--replay DIR]\n"
               "          [--mutations N] [--no-shrink] [--no-naive]\n"
               "          [--max-vertices N] [--max-edges N] [--verbose]\n",
               prog);
}

/// "A:B" -> [A, B); plain "N" -> [0, N).
bool parse_seed_range(const std::string& spec, std::uint64_t* begin,
                      std::uint64_t* end) {
  try {
    const auto colon = spec.find(':');
    if (colon == std::string::npos) {
      *begin = 0;
      *end = std::stoull(spec);
    } else {
      *begin = std::stoull(spec.substr(0, colon));
      *end = std::stoull(spec.substr(colon + 1));
    }
  } catch (const std::exception&) {
    return false;
  }
  return *begin <= *end;
}

void report(const hp::check::FuzzSummary& summary, const char* what) {
  std::fprintf(stderr,
               "hp_fuzz: %s: %lld cases, %lld oracle batteries, "
               "%lld mutation trials, %zu failures in %.2fs\n",
               what, static_cast<long long>(summary.cases),
               static_cast<long long>(summary.oracle_checks),
               static_cast<long long>(summary.mutation_trials),
               summary.failures.size(), summary.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const hp::Args args(argc, argv);
    if (args.has("help")) {
      usage(argv[0]);
      return 0;
    }

    if (args.has("replay")) {
      hp::check::CheckOptions options;
      options.with_naive = !args.has("no-naive");
      const auto summary =
          hp::check::replay_corpus(args.get("replay", ""), options);
      report(summary, "replay");
      return summary.ok() ? 0 : 1;
    }

    hp::check::FuzzConfig config;
    const std::string range = args.get("seed-range", "0:1000");
    if (!parse_seed_range(range, &config.seed_begin, &config.seed_end)) {
      std::fprintf(stderr, "hp_fuzz: bad --seed-range '%s'\n", range.c_str());
      usage(argv[0]);
      return 2;
    }
    config.corpus_dir = args.get("corpus", "");
    config.mutation_trials =
        static_cast<int>(args.get_int("mutations", config.mutation_trials));
    config.shrink_failures = !args.has("no-shrink");
    config.verbose = args.has("verbose");
    config.oracles.with_naive = !args.has("no-naive");
    config.generator.max_vertices = static_cast<hp::index_t>(
        args.get_int("max-vertices", config.generator.max_vertices));
    config.generator.max_edges = static_cast<hp::index_t>(
        args.get_int("max-edges", config.generator.max_edges));

    const auto summary = hp::check::run_fuzz(config);
    report(summary, "sweep");
    return summary.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hp_fuzz: error: %s\n", e.what());
    return 2;
  }
}
