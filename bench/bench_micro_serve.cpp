// Server-vs-one-shot ablation for the analysis server (src/serve/,
// DESIGN.md section 15).
//
// The server exists to amortize dataset loading and artifact building
// across requests; this driver measures exactly that amortization on a
// scaled surrogate:
//
//   * cold one-shot   -- cli::run("stats", path) with a fresh process
//     state per repetition: parse + context build + answer. What a
//     shell loop over hp_cli pays for every query.
//   * warm server     -- Server::handle() against the context cache
//     (first request warms it, the timed ones all hit). The in-process
//     path, so the row measures the cache, not socket noise.
//   * socket open-loop -- a real Unix-socket load test: client threads
//     fire requests on a fixed arrival schedule (latency is measured
//     from the *scheduled* start, so queueing delay is charged to the
//     server, not hidden by a slow client).
//
// The CI gate (scripts/ci.sh) asserts the warm server answers >= 100x
// faster than the cold one-shot ("gate_speedup" in BENCH_serve.json).
//
// Usage: bench_micro_serve [--seed N] [--proteins N] [--rps N]
//                          [--quick] [--json PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bio/cellzome_synth.hpp"
#include "bio/complex_io.hpp"
#include "cli/commands.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using hp::serve::proto::Request;
using hp::serve::proto::Response;

double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t i = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

int run_cli(std::initializer_list<const char*> argv) {
  std::vector<const char*> raw{"hyperproteome"};
  raw.insert(raw.end(), argv.begin(), argv.end());
  const hp::Args args{static_cast<int>(raw.size()), raw.data()};
  std::ostringstream sink;
  return hp::cli::run(args, sink);
}

struct OpenLoopResult {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t requests = 0;
  std::size_t errors = 0;
};

/// Fire `total` warm queries at `rate` requests/second from `clients`
/// connections on a fixed arrival schedule. Each latency is measured
/// from the request's *scheduled* departure time: if the server (or a
/// busy connection) falls behind, the backlog shows up as latency
/// instead of silently stretching the run (closed-loop coordinated
/// omission).
OpenLoopResult open_loop(const hp::serve::Endpoint& endpoint,
                         const std::string& dataset, double rate,
                         std::size_t total, int clients) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> errors{0};
  const Clock::time_point start = Clock::now();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      hp::serve::Client client{endpoint};
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total) break;
        const Clock::time_point scheduled =
            start + std::chrono::nanoseconds(static_cast<std::int64_t>(
                        1e9 * static_cast<double>(i) / rate));
        std::this_thread::sleep_until(scheduled);
        const Response response = client.query("stats", dataset);
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      scheduled)
                .count();
        if (response.ok) {
          latencies[static_cast<std::size_t>(c)].push_back(us);
        } else {
          ++errors;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (const std::vector<double>& part : latencies) {
    all.insert(all.end(), part.begin(), part.end());
  }
  OpenLoopResult out;
  out.offered_rps = rate;
  out.achieved_rps =
      elapsed > 0.0 ? static_cast<double>(all.size()) / elapsed : 0.0;
  out.p50_us = quantile(all, 0.50);
  out.p99_us = quantile(all, 0.99);
  out.requests = all.size();
  out.errors = errors.load();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bool quick = args.get_bool("quick", false);
  const std::string json_path = args.get("json", "");
  const hp::index_t proteins =
      static_cast<hp::index_t>(args.get_int("proteins", 20000));
  const double rate = static_cast<double>(args.get_int("rps", 500));

  std::printf("=== analysis server: context cache vs one-shot CLI ===\n");

  // The scaled surrogate, saved once for every workload to load.
  const std::string dataset = "bench_serve_tmp.hyper";
  {
    hp::bio::CellzomeParams params =
        hp::bio::scaled_cellzome_params(proteins);
    params.seed = seed;
    const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
    hp::cli::save_dataset(data, dataset);
    std::printf("surrogate: %llu proteins, %llu complexes\n",
                static_cast<unsigned long long>(
                    data.hypergraph.num_vertices()),
                static_cast<unsigned long long>(data.hypergraph.num_edges()));
  }

  // Cold one-shot: full load + build + answer, per query.
  const int cold_reps = quick ? 2 : 4;
  double cold_best = 0.0;
  for (int rep = 0; rep < cold_reps; ++rep) {
    hp::Timer timer;
    if (run_cli({"stats", dataset.c_str()}) != 0) {
      std::fprintf(stderr, "bench_micro_serve: one-shot stats failed\n");
      return 1;
    }
    const double s = timer.seconds();
    if (rep == 0 || s < cold_best) cold_best = s;
  }

  // Warm server: in-process handle() against the hot context cache.
  hp::serve::ServerOptions options;
  options.endpoint = hp::serve::parse_endpoint("bench_serve_tmp.sock");
  hp::serve::Server server{std::move(options)};
  Request warm_request;
  warm_request.command = "stats";
  warm_request.path = dataset;
  {
    const Response first = server.handle(warm_request);  // populate cache
    if (!first.ok) {
      std::fprintf(stderr, "bench_micro_serve: warm-up failed: %s\n",
                   first.error.c_str());
      return 1;
    }
  }
  const int warm_reps = quick ? 50 : 400;
  std::vector<double> warm_seconds;
  warm_seconds.reserve(static_cast<std::size_t>(warm_reps));
  for (int rep = 0; rep < warm_reps; ++rep) {
    hp::Timer timer;
    const Response response = server.handle(warm_request);
    const double s = timer.seconds();
    if (!response.ok || response.cache != "hit") {
      std::fprintf(stderr, "bench_micro_serve: expected a cache hit\n");
      return 1;
    }
    warm_seconds.push_back(s);
  }
  const double warm_mean = mean(warm_seconds);
  const double warm_p50 = quantile(warm_seconds, 0.50) * 1e6;
  const double warm_p99 = quantile(warm_seconds, 0.99) * 1e6;
  const double gate_speedup = warm_mean > 0.0 ? cold_best / warm_mean : 0.0;

  // Socket open-loop: end-to-end over a real Unix socket.
  server.start();
  const std::size_t total = quick ? 200 : 1000;
  const OpenLoopResult loop =
      open_loop(server.endpoint(), dataset, rate, total, 4);
  server.request_stop();
  server.wait();

  hp::Table t{{"workload", "latency", "vs cold"}};
  char buffer[64];
  t.row().cell("cold one-shot (stats)")
      .cell(hp::format_duration(cold_best))
      .cell("1.0x");
  std::snprintf(buffer, sizeof buffer, "%.0fx", gate_speedup);
  t.row().cell("warm server (mean)")
      .cell(hp::format_duration(warm_mean))
      .cell(buffer);
  t.row().cell("warm server (p99)")
      .cell(hp::format_duration(warm_p99 / 1e6))
      .cell("");
  t.row().cell("socket open-loop (p50)")
      .cell(hp::format_duration(loop.p50_us / 1e6))
      .cell("");
  t.row().cell("socket open-loop (p99)")
      .cell(hp::format_duration(loop.p99_us / 1e6))
      .cell("");
  t.print();
  std::printf(
      "\nsocket open-loop: offered %.0f rps, achieved %.0f rps, "
      "%zu requests, %zu errors\n",
      loop.offered_rps, loop.achieved_rps, loop.requests, loop.errors);
  std::printf("gate speedup (cold one-shot vs warm server): %.0fx\n",
              gate_speedup);

  if (!json_path.empty()) {
    std::ofstream out{json_path};
    out << "{\n  \"benchmark\": \"bench_micro_serve\",\n"
        << "  \"gate_speedup\": " << gate_speedup << ",\n"
        << "  \"cold_seconds\": " << cold_best << ",\n"
        << "  \"warm_mean_seconds\": " << warm_mean << ",\n"
        << "  \"warm_p50_us\": " << warm_p50 << ",\n"
        << "  \"warm_p99_us\": " << warm_p99 << ",\n"
        << "  \"open_loop\": {\"offered_rps\": " << loop.offered_rps
        << ", \"achieved_rps\": " << loop.achieved_rps
        << ", \"p50_us\": " << loop.p50_us
        << ", \"p99_us\": " << loop.p99_us
        << ", \"requests\": " << loop.requests
        << ", \"errors\": " << loop.errors << "}\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::remove(dataset.c_str());
  if (loop.errors != 0) return 1;
  return 0;
}
