// Figure 3 reproduction: the yeast protein-complex hypergraph drawn as
// a bipartite network in Pajek, with the maximum core highlighted.
//
// The paper: "Yellow and red nodes correspond to proteins, and pink and
// green nodes correspond to complexes. Red nodes correspond to proteins
// and green nodes to complexes in the maximum 6-core." This bench emits
// the same artifact -- a two-mode .net file plus a .clu partition with
// the four classes -- and prints the class census.
//
// Usage: bench_fig3_pajek [--seed N] [--prefix fig3]
#include <cstdio>

#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "core/pajek.hpp"
#include "core/svg.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  hp::bio::CellzomeParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const std::string prefix = args.get("prefix", "fig3");

  const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const hp::hyper::Hypergraph& h = data.hypergraph;
  const hp::hyper::HyperCoreResult cores = hp::hyper::core_decomposition(h);

  const auto classes = hp::hyper::fig3_classes(
      h, cores.vertex_core, cores.edge_core, cores.max_core);
  std::size_t census[4] = {0, 0, 0, 0};
  for (hp::hyper::Fig3Class c : classes) ++census[static_cast<int>(c)];

  std::puts("=== Figure 3: Pajek export of the hypergraph and its core ===\n");
  hp::Table t{{"node class (Pajek color)", "paper", "measured"}};
  t.row()
      .cell("non-core proteins (yellow)")
      .cell("1320")
      .cell(static_cast<std::uint64_t>(
          census[static_cast<int>(hp::hyper::Fig3Class::kProtein)]));
  t.row()
      .cell("core proteins (red)")
      .cell("41")
      .cell(static_cast<std::uint64_t>(
          census[static_cast<int>(hp::hyper::Fig3Class::kCoreProtein)]));
  t.row()
      .cell("non-core complexes (pink)")
      .cell("178")
      .cell(static_cast<std::uint64_t>(
          census[static_cast<int>(hp::hyper::Fig3Class::kComplex)]));
  t.row()
      .cell("core complexes (green)")
      .cell("54")
      .cell(static_cast<std::uint64_t>(
          census[static_cast<int>(hp::hyper::Fig3Class::kCoreComplex)]));
  t.print();

  hp::hyper::save_pajek(
      hp::hyper::to_pajek_bipartite(h, data.proteins.names(),
                                    data.complex_names),
      prefix + ".net");
  hp::hyper::save_pajek(hp::hyper::to_pajek_partition(classes),
                        prefix + ".clu");
  std::printf(
      "\nwrote %s.net (two-mode network, %u + %u nodes, %llu edges) and "
      "%s.clu (%u-core coloring)\n",
      prefix.c_str(), h.num_vertices(), h.num_edges(),
      static_cast<unsigned long long>(h.num_pins()), prefix.c_str(),
      cores.max_core);
  std::puts("open both in Pajek (Draw > Draw-Partition) for the Fig. 3 view.");

  // Offline rendering: force-directed layout of B(H) + SVG with the
  // paper's color legend, so the figure reproduces without Pajek.
  if (!args.get_bool("no-svg", false)) {
    hp::Timer timer;
    hp::hyper::LayoutParams layout;
    layout.iterations =
        static_cast<int>(args.get_int("layout-iterations", 60));
    layout.seed = params.seed;
    const std::string svg = hp::hyper::render_fig3_svg(
        h, cores.vertex_core, cores.edge_core, cores.max_core, layout);
    hp::hyper::save_svg(svg, prefix + ".svg");
    std::printf("wrote %s.svg (%d layout iterations, %s)\n", prefix.c_str(),
                layout.iterations,
                hp::format_duration(timer.seconds()).c_str());
  }
  return 0;
}
