// Microbenchmark for the AnalysisContext memoization layer.
//
// For each derived artifact and each instance we measure three regimes:
//   * cold    -- first access on a fresh context (build + cache fill);
//   * cached  -- repeated access on a warm context (the memoized path);
//   * rebuild -- the ablation with memoization off: calling the
//               underlying module directly on every access.
// The speedup column is rebuild / cached; the acceptance bar for this
// layer is >= 10x on every artifact (in practice it is orders of
// magnitude, since a cached access is a once_flag check).
//
// Instances: the Cellzome surrogate plus synthetic row-net hypergraphs
// at two scales; the larger scale is skipped with --quick.
//
// Usage: bench_micro_context [--seed N] [--quick] [--json PATH]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bio/cellzome_synth.hpp"
#include "core/context/analysis_context.hpp"
#include "core/dual.hpp"
#include "core/kcore.hpp"
#include "core/overlap.hpp"
#include "core/projection.hpp"
#include "core/reduce.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "mm/mm_synth.hpp"
#include "mm/mm_to_hypergraph.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

// Sink defeating dead-code elimination of the rebuild baselines.
volatile std::uint64_t g_sink = 0;

using hp::hyper::AnalysisContext;
using hp::hyper::Hypergraph;

struct ArtifactCase {
  const char* name;
  // Touch the artifact through the context (cached path); returns a
  // token folded into g_sink.
  std::uint64_t (*access)(const AnalysisContext&);
  // Recompute the artifact directly (memoization ablated).
  std::uint64_t (*rebuild)(const Hypergraph&);
};

const ArtifactCase kCases[] = {
    {"dual", [](const AnalysisContext& c) { return c.dual().num_pins(); },
     [](const Hypergraph& h) { return hp::hyper::dual(h).num_pins(); }},
    {"clique projection",
     [](const AnalysisContext& c) { return c.clique_projection().num_edges(); },
     [](const Hypergraph& h) {
       return hp::hyper::clique_expansion(h).num_edges();
     }},
    {"star projection",
     [](const AnalysisContext& c) { return c.star_projection().num_edges(); },
     [](const Hypergraph& h) {
       return hp::hyper::star_expansion(h, hp::hyper::default_baits(h))
           .num_edges();
     }},
    {"intersection projection",
     [](const AnalysisContext& c) {
       return c.intersection_projection().num_edges();
     },
     [](const Hypergraph& h) {
       return hp::hyper::intersection_graph(h, nullptr).num_edges();
     }},
    {"components",
     [](const AnalysisContext& c) {
       return static_cast<std::uint64_t>(c.components().count);
     },
     [](const Hypergraph& h) {
       return static_cast<std::uint64_t>(
           hp::hyper::connected_components(h).count);
     }},
    {"vertex degree histogram",
     [](const AnalysisContext& c) {
       return static_cast<std::uint64_t>(
           c.vertex_degree_histogram().frequencies().size());
     },
     [](const Hypergraph& h) {
       return static_cast<std::uint64_t>(
           hp::hyper::vertex_degree_histogram(h).frequencies().size());
     }},
    {"edge size histogram",
     [](const AnalysisContext& c) {
       return static_cast<std::uint64_t>(
           c.edge_size_histogram().frequencies().size());
     },
     [](const Hypergraph& h) {
       return static_cast<std::uint64_t>(
           hp::hyper::edge_size_histogram(h).frequencies().size());
     }},
    {"overlap table",
     [](const AnalysisContext& c) {
       return static_cast<std::uint64_t>(c.overlaps().max_degree2());
     },
     [](const Hypergraph& h) {
       return static_cast<std::uint64_t>(
           hp::hyper::OverlapTable{h}.max_degree2());
     }},
    {"reduced hypergraph",
     [](const AnalysisContext& c) { return c.reduced().hypergraph.num_pins(); },
     [](const Hypergraph& h) {
       return hp::hyper::reduce(h).hypergraph.num_pins();
     }},
    {"core decomposition",
     [](const AnalysisContext& c) {
       return static_cast<std::uint64_t>(c.cores().max_core);
     },
     [](const Hypergraph& h) {
       return static_cast<std::uint64_t>(
           hp::hyper::core_decomposition(h, nullptr).max_core);
     }},
    {"summary",
     [](const AnalysisContext& c) {
       return static_cast<std::uint64_t>(c.summary().num_components);
     },
     [](const Hypergraph& h) {
       return static_cast<std::uint64_t>(
           hp::hyper::summarize(h).num_components);
     }},
    {"path summary",
     [](const AnalysisContext& c) {
       return static_cast<std::uint64_t>(c.paths().diameter);
     },
     [](const Hypergraph& h) {
       return static_cast<std::uint64_t>(hp::hyper::path_summary(h).diameter);
     }},
};

struct ArtifactTiming {
  std::string name;
  double cold_seconds = 0.0;
  double cached_seconds = 0.0;   // per access, warm context
  double rebuild_seconds = 0.0;  // per access, memoization off
  double speedup = 0.0;          // rebuild / cached
};

struct InstanceTiming {
  std::string name;
  hp::count_t num_vertices = 0;
  hp::count_t num_edges = 0;
  std::vector<ArtifactTiming> artifacts;
};

InstanceTiming run_instance(const std::string& name, const Hypergraph& h,
                            int rebuild_reps, int cached_reps) {
  InstanceTiming out;
  out.name = name;
  out.num_vertices = h.num_vertices();
  out.num_edges = h.num_edges();

  const AnalysisContext ctx{h};
  for (const ArtifactCase& item : kCases) {
    ArtifactTiming t;
    t.name = item.name;

    {
      hp::Timer timer;
      g_sink = g_sink + item.access(ctx);  // first touch: builds the artifact
      t.cold_seconds = timer.seconds();
    }
    {
      hp::Timer timer;
      for (int i = 0; i < cached_reps; ++i) g_sink = g_sink + item.access(ctx);
      t.cached_seconds = timer.seconds() / cached_reps;
    }
    {
      hp::Timer timer;
      for (int i = 0; i < rebuild_reps; ++i) g_sink = g_sink + item.rebuild(h);
      t.rebuild_seconds = timer.seconds() / rebuild_reps;
    }
    t.speedup = t.cached_seconds > 0.0 ? t.rebuild_seconds / t.cached_seconds
                                       : 0.0;
    out.artifacts.push_back(std::move(t));
  }
  return out;
}

void print_instance(const InstanceTiming& inst) {
  std::printf("\n--- %s (|V| = %llu, |F| = %llu) ---\n", inst.name.c_str(),
              static_cast<unsigned long long>(inst.num_vertices),
              static_cast<unsigned long long>(inst.num_edges));
  hp::Table t{{"artifact", "cold build", "cached access", "rebuild (ablated)",
               "speedup"}};
  for (const ArtifactTiming& a : inst.artifacts) {
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.0fx", a.speedup);
    t.row()
        .cell(a.name)
        .cell(hp::format_duration(a.cold_seconds))
        .cell(hp::format_duration(a.cached_seconds))
        .cell(hp::format_duration(a.rebuild_seconds))
        .cell(speedup);
  }
  t.print();
}

void write_json(const std::string& path,
                const std::vector<InstanceTiming>& instances) {
  std::ofstream out{path};
  out << "{\n  \"benchmark\": \"bench_micro_context\",\n  \"instances\": [\n";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const InstanceTiming& inst = instances[i];
    out << "    {\n      \"name\": \"" << inst.name << "\",\n"
        << "      \"num_vertices\": " << inst.num_vertices << ",\n"
        << "      \"num_edges\": " << inst.num_edges << ",\n"
        << "      \"artifacts\": [\n";
    for (std::size_t j = 0; j < inst.artifacts.size(); ++j) {
      const ArtifactTiming& a = inst.artifacts[j];
      out << "        {\"name\": \"" << a.name << "\", \"cold_seconds\": "
          << a.cold_seconds << ", \"cached_seconds\": " << a.cached_seconds
          << ", \"rebuild_seconds\": " << a.rebuild_seconds
          << ", \"speedup\": " << a.speedup << "}"
          << (j + 1 < inst.artifacts.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (i + 1 < instances.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bool quick = args.get_bool("quick", false);
  const std::string json_path = args.get("json", "");

  // Cheap artifacts need many repetitions for a stable per-access time;
  // expensive rebuilds (all-pairs BFS, projections) need few.
  const int rebuild_reps = quick ? 2 : 5;
  const int cached_reps = quick ? 10000 : 100000;

  std::puts(
      "=== AnalysisContext: cold build vs cached access vs rebuild ===");

  std::vector<InstanceTiming> instances;
  {
    hp::bio::CellzomeParams params;
    params.seed = seed;
    const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
    instances.push_back(run_instance("cellzome surrogate", data.hypergraph,
                                     rebuild_reps, cached_reps));
  }
  {
    hp::Rng rng{seed ^ 0xC0DE1ULL};
    const Hypergraph h = hp::mm::row_net_hypergraph(
        hp::mm::synthesize_fem_blocks(1024, 10, 1600, rng));
    instances.push_back(
        run_instance("fem blocks 1k", h, rebuild_reps, cached_reps));
  }
  if (!quick) {
    hp::Rng rng{seed ^ 0xC0DE2ULL};
    const Hypergraph h = hp::mm::row_net_hypergraph(
        hp::mm::synthesize_fem_blocks(4096, 12, 6400, rng));
    instances.push_back(
        run_instance("fem blocks 4k", h, rebuild_reps, cached_reps));
  }

  for (const InstanceTiming& inst : instances) print_instance(inst);

  double worst = 0.0;
  bool first = true;
  for (const InstanceTiming& inst : instances) {
    for (const ArtifactTiming& a : inst.artifacts) {
      if (first || a.speedup < worst) worst = a.speedup;
      first = false;
    }
  }
  std::printf(
      "\nworst cached-vs-rebuild speedup across all artifacts: %.0fx\n",
      worst);

  if (!json_path.empty()) {
    write_json(json_path, instances);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
