// Serial-vs-pool ablation for the shared work-stealing runtime
// (src/par/, DESIGN.md section 11).
//
// Each workload runs twice on the same instance: once with the pool
// forced serial via LaneLimit{1} (the exact code path HP_THREADS=1
// takes) and once on the global pool's full lane count. The speedup
// column is serial / pool, best-of-reps on both sides. Workloads:
//
//   * all-sources BFS -- hyper::path_summary, the gate workload: CI
//     requires >= 3x on an 8-core machine (scripts/ci.sh enforces this
//     only when the host actually has >= 8 hardware threads);
//   * parallel k-core -- core_decomposition_parallel's containment
//     scans;
//   * context prefetch -- AnalysisContext::prefetch() fanning artifact
//     builds across the pool vs building the slots one by one.
//
// Results additionally verify the determinism contract: the serial and
// pool runs must agree exactly, or the binary exits nonzero.
//
// Usage: bench_micro_par [--seed N] [--quick] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bio/cellzome_synth.hpp"
#include "core/context/analysis_context.hpp"
#include "core/kcore_parallel.hpp"
#include "core/traversal.hpp"
#include "mm/mm_synth.hpp"
#include "mm/mm_to_hypergraph.hpp"
#include "par/thread_pool.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using hp::hyper::Hypergraph;

volatile std::uint64_t g_sink = 0;

struct WorkloadTiming {
  std::string name;
  double serial_seconds = 0.0;  // LaneLimit{1}, best of reps
  double pool_seconds = 0.0;    // full lanes, best of reps
  double speedup = 0.0;         // serial / pool
  bool deterministic = true;    // serial and pool outputs agreed
};

struct InstanceTiming {
  std::string name;
  hp::count_t num_vertices = 0;
  hp::count_t num_edges = 0;
  std::vector<WorkloadTiming> workloads;
};

/// Best-of-reps wall time for `fn()`, returning fn's token for the
/// determinism cross-check.
template <typename Fn>
double best_of(int reps, std::uint64_t& token, const Fn& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    hp::Timer timer;
    token = fn();
    const double s = timer.seconds();
    if (i == 0 || s < best) best = s;
  }
  g_sink = g_sink + token;
  return best;
}

template <typename Fn>
WorkloadTiming ablate(const char* name, int reps, const Fn& fn) {
  WorkloadTiming t;
  t.name = name;
  std::uint64_t serial_token = 0;
  {
    hp::par::LaneLimit serial{1};
    t.serial_seconds = best_of(reps, serial_token, fn);
  }
  std::uint64_t pool_token = 0;
  t.pool_seconds = best_of(reps, pool_token, fn);
  t.speedup =
      t.pool_seconds > 0.0 ? t.serial_seconds / t.pool_seconds : 0.0;
  t.deterministic = serial_token == pool_token;
  return t;
}

InstanceTiming run_instance(const std::string& name, const Hypergraph& h,
                            int reps) {
  InstanceTiming out;
  out.name = name;
  out.num_vertices = h.num_vertices();
  out.num_edges = h.num_edges();

  out.workloads.push_back(ablate("all-sources BFS", reps, [&] {
    const hp::hyper::HyperPathSummary s = hp::hyper::path_summary(h);
    return static_cast<std::uint64_t>(s.connected_pairs) * 131 +
           static_cast<std::uint64_t>(s.diameter);
  }));

  out.workloads.push_back(ablate("parallel k-core", reps, [&] {
    const hp::hyper::HyperCoreResult r =
        hp::hyper::core_decomposition_parallel(h);
    std::uint64_t token = r.max_core;
    for (hp::index_t core : r.vertex_core) token = token * 31 + core;
    return token;
  }));

  out.workloads.push_back(ablate("context prefetch", reps, [&] {
    // Fresh context per rep: prefetch on a warm context is a no-op.
    const hp::hyper::AnalysisContext ctx{h};
    ctx.prefetch();
    return static_cast<std::uint64_t>(ctx.cores().max_core) * 131 +
           static_cast<std::uint64_t>(ctx.components().count);
  }));

  return out;
}

void print_instance(const InstanceTiming& inst) {
  std::printf("\n--- %s (|V| = %llu, |F| = %llu) ---\n", inst.name.c_str(),
              static_cast<unsigned long long>(inst.num_vertices),
              static_cast<unsigned long long>(inst.num_edges));
  hp::Table t{{"workload", "serial (1 lane)", "pool", "speedup",
               "deterministic"}};
  for (const WorkloadTiming& w : inst.workloads) {
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", w.speedup);
    t.row()
        .cell(w.name)
        .cell(hp::format_duration(w.serial_seconds))
        .cell(hp::format_duration(w.pool_seconds))
        .cell(speedup)
        .cell(w.deterministic ? "yes" : "NO");
  }
  t.print();
}

void write_json(const std::string& path,
                const std::vector<InstanceTiming>& instances,
                double bfs_speedup) {
  std::ofstream out{path};
  out << "{\n  \"benchmark\": \"bench_micro_par\",\n"
      << "  \"hardware_threads\": " << hp::par::hardware_threads() << ",\n"
      << "  \"pool_lanes\": "
      << hp::par::ThreadPool::global().thread_count() << ",\n"
      << "  \"bfs_speedup\": " << bfs_speedup << ",\n"
      << "  \"instances\": [\n";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const InstanceTiming& inst = instances[i];
    out << "    {\n      \"name\": \"" << inst.name << "\",\n"
        << "      \"num_vertices\": " << inst.num_vertices << ",\n"
        << "      \"num_edges\": " << inst.num_edges << ",\n"
        << "      \"workloads\": [\n";
    for (std::size_t j = 0; j < inst.workloads.size(); ++j) {
      const WorkloadTiming& w = inst.workloads[j];
      out << "        {\"name\": \"" << w.name
          << "\", \"serial_seconds\": " << w.serial_seconds
          << ", \"pool_seconds\": " << w.pool_seconds
          << ", \"speedup\": " << w.speedup << ", \"deterministic\": "
          << (w.deterministic ? "true" : "false") << "}"
          << (j + 1 < inst.workloads.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (i + 1 < instances.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bool quick = args.get_bool("quick", false);
  const std::string json_path = args.get("json", "");
  const int reps = quick ? 2 : 4;

  std::printf(
      "=== src/par ablation: serial (LaneLimit 1) vs pool (%d lanes, %d "
      "hardware) ===\n",
      hp::par::ThreadPool::global().thread_count(),
      hp::par::hardware_threads());

  std::vector<InstanceTiming> instances;
  {
    hp::bio::CellzomeParams params;
    params.seed = seed;
    const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
    instances.push_back(
        run_instance("cellzome surrogate", data.hypergraph, reps));
  }
  {
    hp::Rng rng{seed ^ 0xC0DE1ULL};
    const Hypergraph h = hp::mm::row_net_hypergraph(
        hp::mm::synthesize_fem_blocks(1024, 10, 1600, rng));
    instances.push_back(run_instance("fem blocks 1k", h, reps));
  }
  if (!quick) {
    hp::Rng rng{seed ^ 0xC0DE2ULL};
    const Hypergraph h = hp::mm::row_net_hypergraph(
        hp::mm::synthesize_fem_blocks(4096, 12, 6400, rng));
    instances.push_back(run_instance("fem blocks 4k", h, reps));
  }

  for (const InstanceTiming& inst : instances) print_instance(inst);

  // The CI gate reads the best all-sources BFS speedup across instances
  // (the largest instance dominates on real hardware; on a 1-2 core
  // machine the number is ~1 and the gate is skipped by scripts/ci.sh).
  double bfs_speedup = 0.0;
  bool determinism_ok = true;
  for (const InstanceTiming& inst : instances) {
    for (const WorkloadTiming& w : inst.workloads) {
      if (w.name == "all-sources BFS") {
        bfs_speedup = std::max(bfs_speedup, w.speedup);
      }
      determinism_ok = determinism_ok && w.deterministic;
    }
  }
  std::printf("\nbest all-sources BFS serial/pool speedup: %.2fx\n",
              bfs_speedup);

  if (!json_path.empty()) {
    write_json(json_path, instances, bfs_speedup);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!determinism_ok) {
    std::fprintf(stderr,
                 "bench_micro_par: serial and pool runs disagreed -- "
                 "determinism contract violated\n");
    return 1;
  }
  return 0;
}
