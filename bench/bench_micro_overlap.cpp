// Ablation: FlatOverlapTracker (CSR-of-rows substrate) vs the legacy
// one-unordered_map-per-edge overlap rows it replaced.
//
// Two axes on the same random-hypergraph sweep bench_micro_kcore uses
// (the ablation generator sizes) plus the Cellzome surrogate:
//   * build time -- both are O(sum_v d(v)^2) pair generation, but the
//     flat build writes two contiguous arrays while the map build
//     allocates a node per pair;
//   * footprint -- reported via the "bytes" counter: exact
//     storage_bytes() for the flat layout, a node/bucket estimate for
//     the maps (the maps do not expose their heap usage).
// Results are recorded in EXPERIMENTS.md ("Peeling substrate" section).
#include <benchmark/benchmark.h>

#include <unordered_map>
#include <vector>

#include "bio/cellzome_synth.hpp"
#include "core/peel/flat_overlap.hpp"
#include "util/rng.hpp"

namespace {

hp::hyper::Hypergraph random_hypergraph(std::uint64_t seed,
                                        hp::index_t num_vertices,
                                        hp::index_t num_edges,
                                        hp::index_t max_size) {
  hp::Rng rng{seed};
  hp::hyper::HypergraphBuilder builder{num_vertices};
  std::vector<hp::index_t> members;
  for (hp::index_t e = 0; e < num_edges; ++e) {
    const hp::index_t size = 2 + static_cast<hp::index_t>(
                                     rng.uniform(max_size - 1));
    members.clear();
    for (hp::index_t i = 0; i < size; ++i) {
      members.push_back(
          static_cast<hp::index_t>(rng.uniform(num_vertices)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

const hp::hyper::Hypergraph& cellzome() {
  static const hp::hyper::Hypergraph h =
      hp::bio::cellzome_surrogate().hypergraph;
  return h;
}

using MapRows = std::vector<std::unordered_map<hp::index_t, hp::index_t>>;

/// The retired OverlapTable construction: one hash map per edge row.
MapRows build_map_rows(const hp::hyper::Hypergraph& h) {
  MapRows rows(h.num_edges());
  for (hp::index_t v = 0; v < h.num_vertices(); ++v) {
    const auto edges = h.edges_of(v);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      for (std::size_t j = i + 1; j < edges.size(); ++j) {
        ++rows[edges[i]][edges[j]];
        ++rows[edges[j]][edges[i]];
      }
    }
  }
  return rows;
}

/// Heap estimate for the map layout: per-map header + bucket array +
/// one node (pair + hash link) per stored entry. Conservative -- real
/// allocator overhead is higher.
std::size_t map_rows_bytes(const MapRows& rows) {
  std::size_t total = rows.size() * sizeof(rows[0]);
  for (const auto& row : rows) {
    total += row.bucket_count() * sizeof(void*);
    total += row.size() *
             (sizeof(std::pair<hp::index_t, hp::index_t>) + 2 * sizeof(void*));
  }
  return total;
}

void BM_FlatOverlapBuild(benchmark::State& state) {
  const auto h = random_hypergraph(42, static_cast<hp::index_t>(state.range(0)),
                                   static_cast<hp::index_t>(state.range(0)),
                                   8);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const hp::hyper::FlatOverlapTracker tracker{h};
    benchmark::DoNotOptimize(&tracker);
    bytes = tracker.storage_bytes();
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlatOverlapBuild)->Range(64, 4096)->Complexity();

void BM_MapOverlapBuild(benchmark::State& state) {
  const auto h = random_hypergraph(42, static_cast<hp::index_t>(state.range(0)),
                                   static_cast<hp::index_t>(state.range(0)),
                                   8);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const MapRows rows = build_map_rows(h);
    benchmark::DoNotOptimize(&rows);
    bytes = map_rows_bytes(rows);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MapOverlapBuild)->Range(64, 4096)->Complexity();

void BM_FlatOverlapBuildCellzome(benchmark::State& state) {
  const auto& h = cellzome();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const hp::hyper::FlatOverlapTracker tracker{h};
    benchmark::DoNotOptimize(&tracker);
    bytes = tracker.storage_bytes();
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FlatOverlapBuildCellzome);

void BM_MapOverlapBuildCellzome(benchmark::State& state) {
  const auto& h = cellzome();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const MapRows rows = build_map_rows(h);
    benchmark::DoNotOptimize(&rows);
    bytes = map_rows_bytes(rows);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MapOverlapBuildCellzome);

}  // namespace

BENCHMARK_MAIN();
