// Table 1 reproduction: hypergraph statistics and maximum-core
// computations on the Cellzome hypergraph and on hypergraphs derived
// from Matrix Market-style sparse matrices.
//
// Paper columns: |V|, |F|, |E|, Delta_V, Delta_F, Delta_2,F, max core,
// core |V|, core |F|, time. The original bfw/fidap/bcsstk/utm matrices
// are replaced by synthetic matrices with the same structural character
// (see DESIGN.md); sizes are scaled so the full sweep runs in seconds.
// The trend being reproduced: run time grows with the core size and
// with Delta_2,F.
//
// The peel-substrate counters (overlap decrements, containment probes,
// peel rounds) are reported per row with --peel-stats, making the
// O(|E| (Delta_2,F + Delta_V ln Delta_2,F)) complexity claim an
// observable: decrements + probes should track |E| * Delta_2,F across
// the sweep, not |F|^2.
//
// Usage: bench_table1_cores [--seed N] [--skip-large] [--peel-stats]
//                           [--trace out.json]
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bio/cellzome_synth.hpp"
#include "core/context/analysis_context.hpp"
#include "core/kcore.hpp"
#include "core/overlap.hpp"
#include "core/stats.hpp"
#include "mm/mm_synth.hpp"
#include "mm/mm_to_hypergraph.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct NamedHypergraph {
  std::string name;
  std::string family;  // which Matrix Market family it stands in for
  hp::hyper::Hypergraph hypergraph;
};

void add_row(hp::Table& table, const NamedHypergraph& item,
             hp::hyper::PeelStats* stats) {
  // One artifact cache per row: the overlap table behind Delta_2,F is
  // built once here instead of once per consumer.
  const hp::hyper::AnalysisContext ctx{item.hypergraph};
  const hp::hyper::Hypergraph& h = ctx.hypergraph();
  const hp::index_t delta2 = ctx.overlaps().max_degree2();

  hp::Timer timer;
  const hp::hyper::HyperCoreResult& cores = ctx.cores();
  const double seconds = timer.seconds();
  if (stats != nullptr) *stats = ctx.core_peel_stats();

  table.row()
      .cell(item.name)
      .cell(static_cast<std::uint64_t>(h.num_vertices()))
      .cell(static_cast<std::uint64_t>(h.num_edges()))
      .cell(static_cast<std::uint64_t>(h.num_pins()))
      .cell(static_cast<std::uint64_t>(h.max_vertex_degree()))
      .cell(static_cast<std::uint64_t>(h.max_edge_size()))
      .cell(static_cast<std::uint64_t>(delta2))
      .cell(static_cast<std::uint64_t>(cores.max_core))
      .cell(static_cast<std::uint64_t>(
          cores.core_vertices(cores.max_core).size()))
      .cell(static_cast<std::uint64_t>(
          cores.core_edges(cores.max_core).size()))
      .cell(hp::format_duration(seconds));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bool skip_large = args.get_bool("skip-large", false);
  const bool peel_stats = args.get_bool("peel-stats", false);
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) hp::obs::set_tracing_enabled(true);

  std::puts(
      "=== Table 1: hypergraphs and their maximum cores ===\n"
      "(synthetic stand-ins for the Matrix Market matrices; the Cellzome\n"
      "row is the calibrated surrogate. Paper reference for Cellzome:\n"
      "|V| = 1361, |F| = 232, max core 6 with 41 vertices / 54 edges,\n"
      "0.47 s on a 2 GHz Xeon.)\n");

  std::vector<NamedHypergraph> items;
  {
    hp::bio::CellzomeParams p;
    p.seed = seed;
    items.push_back(
        {"cellzome", "protein complexes",
         hp::bio::cellzome_surrogate(p).hypergraph});
  }
  {
    hp::Rng rng{seed ^ 1};
    items.push_back({"bfw_s (banded FEM)", "bfw398a",
                     hp::mm::row_net_hypergraph(
                         hp::mm::synthesize_banded(398, 6, 0.65, rng))});
  }
  {
    hp::Rng rng{seed ^ 2};
    items.push_back({"fdp_s (fluid blocks)", "fidap (small)",
                     hp::mm::row_net_hypergraph(
                         hp::mm::synthesize_fem_blocks(1500, 12, 2500, rng))});
  }
  {
    hp::Rng rng{seed ^ 3};
    items.push_back(
        {"stk (stiffness)", "bcsstk",
         hp::mm::row_net_hypergraph(
             hp::mm::synthesize_stiffness(4000, 8, 5000, rng))});
  }
  {
    hp::Rng rng{seed ^ 4};
    items.push_back({"utm (tokamak)", "utm",
                     hp::mm::row_net_hypergraph(
                         hp::mm::synthesize_tokamak(900, 5, 6, 0.5, rng))});
  }
  if (!skip_large) {
    hp::Rng rng{seed ^ 5};
    items.push_back(
        {"fdp_l (fluid blocks)", "fidap (large)",
         hp::mm::row_net_hypergraph(
             hp::mm::synthesize_fem_blocks(8000, 16, 12000, rng))});
  }

  hp::Table table{{"hypergraph", "|V|", "|F|", "|E|", "dV", "dF", "d2F",
                   "max core", "core |V|", "core |F|", "time"}};
  std::vector<hp::hyper::PeelStats> stats(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    add_row(table, items[i], peel_stats ? &stats[i] : nullptr);
  }
  table.print();

  if (peel_stats) {
    std::puts("\n=== peel substrate counters ===");
    hp::Table counters{{"hypergraph", "ov decr", "probes", "cascaded",
                        "rounds", "peak queue"}};
    for (std::size_t i = 0; i < items.size(); ++i) {
      counters.row()
          .cell(items[i].name)
          .cell(stats[i].overlap_decrements)
          .cell(stats[i].containment_probes)
          .cell(stats[i].cascaded_edge_deletions)
          .cell(stats[i].peel_rounds)
          .cell(stats[i].peak_queue_length);
    }
    counters.print();
  }

  std::puts(
      "\ntrend reproduced from the paper: run time grows with core size "
      "and Delta_2,F; large cores (stiffness/fluid rows) dominate the "
      "sweep, motivating the parallel algorithm (see bench_micro_kcore).");
  if (!trace_path.empty()) {
    hp::obs::write_chrome_trace_file(trace_path);
    std::printf("\nwrote trace %s\n", trace_path.c_str());
  }
  return 0;
}
