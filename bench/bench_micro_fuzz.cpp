// Microbenchmark for the differential-fuzzing harness: cases per
// second by pipeline stage, so a slow oracle (or a generator that
// quietly started emitting huge instances) shows up as a throughput
// regression rather than a mysteriously slower CI fuzz stage.
//
// Stages measured over the same seed range:
//   * generate      -- instance generation only;
//   * oracle-lite   -- cheap oracle battery (naive reference, path
//                      cross-check, loaders, context comparison off);
//   * oracle-full   -- the complete battery hp_fuzz runs in CI;
//   * mutations     -- loader-corruption trials only (parse-or-throw).
//
// The budget check keeps the CI smoke stage honest: the full battery
// must sustain >= 25 cases/s (release build; the observed rate is two
// orders of magnitude above, so tripping this means something real).
//
// Usage: bench_micro_fuzz [--seed N] [--cases N] [--quick] [--json PATH]
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "check/generator.hpp"
#include "check/oracles.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

volatile std::uint64_t g_sink = 0;

struct StageTiming {
  std::string name;
  double seconds = 0.0;
  double cases_per_second = 0.0;
};

StageTiming time_stage(const char* name, std::uint64_t cases,
                       const std::function<void(std::uint64_t)>& body) {
  StageTiming t;
  t.name = name;
  hp::Timer timer;
  for (std::uint64_t seed = 0; seed < cases; ++seed) body(seed);
  t.seconds = timer.seconds();
  t.cases_per_second =
      t.seconds > 0.0 ? static_cast<double>(cases) / t.seconds : 0.0;
  return t;
}

void write_json(const std::string& path, std::uint64_t cases,
                const std::vector<StageTiming>& stages) {
  std::ofstream out{path};
  out << "{\n  \"benchmark\": \"bench_micro_fuzz\",\n  \"cases\": " << cases
      << ",\n  \"stages\": [\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    out << "    {\"name\": \"" << stages[i].name
        << "\", \"seconds\": " << stages[i].seconds
        << ", \"cases_per_second\": " << stages[i].cases_per_second << "}"
        << (i + 1 < stages.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bool quick = args.get_bool("quick", false);
  const std::uint64_t cases = static_cast<std::uint64_t>(
      args.get_int("cases", quick ? 250 : 2000));
  const std::string json_path = args.get("json", "");

  using hp::check::CheckOptions;
  hp::check::GenOptions gen;

  std::printf("=== hp_fuzz pipeline throughput (%llu cases) ===\n",
              static_cast<unsigned long long>(cases));

  std::vector<StageTiming> stages;
  stages.push_back(time_stage("generate", cases, [&](std::uint64_t s) {
    g_sink = g_sink + hp::check::generate(base_seed + s, gen).num_pins();
  }));

  CheckOptions lite;
  lite.with_naive = false;
  lite.with_paths = false;
  lite.with_loaders = false;
  lite.with_context = false;
  stages.push_back(time_stage("oracle-lite", cases, [&](std::uint64_t s) {
    const auto h = hp::check::generate(base_seed + s, gen);
    g_sink = g_sink + hp::check::run_all_oracles(h, lite).size();
  }));

  stages.push_back(time_stage("oracle-full", cases, [&](std::uint64_t s) {
    const auto h = hp::check::generate(base_seed + s, gen);
    g_sink = g_sink + hp::check::run_all_oracles(h, CheckOptions{}).size();
  }));

  stages.push_back(time_stage("mutations", cases, [&](std::uint64_t s) {
    const auto h = hp::check::generate(base_seed + s, gen);
    hp::Rng rng{base_seed + s};
    g_sink = g_sink + hp::check::check_mutated_loads(h, rng, 4).size();
  }));

  hp::Table t{{"stage", "total", "cases/s"}};
  for (const StageTiming& s : stages) {
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.0f", s.cases_per_second);
    t.row().cell(s.name).cell(hp::format_duration(s.seconds)).cell(rate);
  }
  t.print();

  if (!json_path.empty()) write_json(json_path, cases, stages);

  const double full_rate = stages[2].cases_per_second;
  std::printf("\noracle-full throughput: %.0f cases/s (budget: >= 25)\n",
              full_rate);
  return full_rate >= 25.0 ? 0 : 1;
}
