// Ablation of the Cellzome-surrogate generator's design choices
// (DESIGN.md section 2): which calibration knob produces which paper
// property. Each row disables or varies one mechanism and reports the
// properties the paper pins down:
//
//   * planted core module      -> the 6-core with ~41 proteins
//   * locality window          -> complex-complex overlap, hence
//                                 containment cascades, reduced |F|,
//                                 and the core's complex count
//   * hub anchor regions       -> hub redundancy, hence the cover sizes
//                                 and the component census
//
// Usage: bench_ablation_generator [--seed N]
#include <cstdio>

#include "bio/bait.hpp"
#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

void report_row(hp::Table& t, const char* name,
                const hp::bio::CellzomeParams& params) {
  const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const hp::hyper::Hypergraph& h = data.hypergraph;
  const hp::hyper::HyperCoreResult cores = hp::hyper::core_decomposition(h);
  const hp::hyper::HyperPathSummary paths = hp::hyper::path_summary(h);
  const hp::hyper::HyperComponents comps =
      hp::hyper::connected_components(h);
  const hp::bio::BaitSelection cover =
      hp::bio::select_baits(h, hp::bio::BaitStrategy::kMinCardinality);

  char core_text[48];
  std::snprintf(core_text, sizeof core_text, "%u (%zu/%zu)", cores.max_core,
                cores.core_vertices(cores.max_core).size(),
                cores.core_edges(cores.max_core).size());
  t.row()
      .cell(name)
      .cell(core_text)
      .cell(static_cast<std::uint64_t>(cores.level_edges[0]))
      .cell(static_cast<std::uint64_t>(comps.count))
      .cell(static_cast<std::uint64_t>(paths.diameter))
      .cell(paths.average_length, 2)
      .cell(static_cast<std::uint64_t>(cover.baits.size()))
      .cell(cover.average_degree, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));

  std::puts(
      "=== Generator ablation: which mechanism produces which paper "
      "property ===\n"
      "(paper targets: core 6 (41/54), 232 complexes, 33 components,\n"
      " diameter 6, avg path 2.568, min cover 109 at avg degree 3.7)\n");

  hp::Table t{{"variant", "max core (V/F)", "reduced |F|", "components",
               "diameter", "avg path", "min cover", "cover deg"}};

  {
    hp::bio::CellzomeParams p;
    p.seed = seed;
    report_row(t, "full generator (default)", p);
  }
  {
    hp::bio::CellzomeParams p;
    p.seed = seed;
    p.core_memberships = 1;  // effectively no planted module
    report_row(t, "no planted core module", p);
  }
  {
    hp::bio::CellzomeParams p;
    p.seed = seed;
    p.locality_window = 0;  // pure configuration model wiring
    report_row(t, "no locality (config model)", p);
  }
  {
    hp::bio::CellzomeParams p;
    p.seed = seed;
    p.hub_regions = 0;  // hubs roam freely
    report_row(t, "no hub anchor regions", p);
  }
  {
    hp::bio::CellzomeParams p;
    p.seed = seed;
    p.locality_window = 10;  // over-strong locality
    report_row(t, "locality window x3", p);
  }
  {
    hp::bio::CellzomeParams p;
    p.seed = seed + 1;  // seed robustness
    report_row(t, "default, different seed", p);
  }
  t.print();

  std::puts(
      "\nreading: removing the planted module collapses the deep core "
      "(6 -> 3); removing locality inflates the reduced complex count and "
      "the core's complex census and overshoots the max core; removing "
      "hub anchors shrinks the min cover and raises its average degree "
      "(hubs become too efficient); widening the window beyond the anchor "
      "ring changes nothing (all memberships already place locally), and "
      "a different seed moves each property only slightly.");
  return 0;
}
