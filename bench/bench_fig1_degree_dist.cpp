// Figure 1 reproduction: the protein degree distribution of the yeast
// protein-complex hypergraph follows a power law P(d) = c d^-gamma.
// Paper values: log10(c) = 3.161, gamma = 2.528, R^2 = 0.963.
//
// Also reproduces the accompanying section-2 observation that complex
// sizes follow neither a power law nor an exponential (we report both
// fits and their R^2).
//
// Usage: bench_fig1_degree_dist [--seed N] [--csv out.csv]
#include <cstdio>

#include "bio/cellzome_synth.hpp"
#include "core/stats.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  hp::bio::CellzomeParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));

  const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const hp::hyper::Hypergraph& h = data.hypergraph;

  std::puts("=== Figure 1: protein degree distribution (log-log) ===\n");
  const hp::Histogram degrees = hp::hyper::vertex_degree_histogram(h);
  {
    hp::Table t{{"degree d", "proteins with degree d"}};
    for (std::size_t d = 1; d < degrees.frequencies().size(); ++d) {
      if (degrees.count(d) == 0) continue;
      t.row().cell(static_cast<std::uint64_t>(d)).cell(
          static_cast<std::uint64_t>(degrees.count(d)));
    }
    t.print();
  }

  const hp::PowerLawFit fit = hp::hyper::vertex_degree_power_law(h);
  std::puts("\n--- Power-law fit P(d) = c * d^-gamma ---");
  {
    hp::Table t{{"quantity", "paper", "measured"}};
    t.row().cell("log10(c)").cell(3.161, 3).cell(fit.log10_c, 3);
    t.row().cell("gamma").cell(2.528, 3).cell(fit.gamma, 3);
    t.row().cell("R^2").cell(0.963, 3).cell(fit.r_squared, 3);
    t.print();
  }

  std::puts(
      "\n--- Complex size distribution: neither power law nor exponential "
      "---");
  const hp::hyper::EdgeSizeFits size_fits = hp::hyper::edge_size_fits(h);
  {
    hp::Table t{{"model", "R^2 (low = poor fit, as the paper observes)"}};
    t.row().cell("power law").cell(size_fits.power.r_squared, 3);
    t.row().cell("exponential").cell(size_fits.exponential.r_squared, 3);
    t.print();
  }

  if (args.has("csv")) {
    hp::CsvWriter csv;
    csv.add_row({"degree", "frequency"});
    for (std::size_t d = 1; d < degrees.frequencies().size(); ++d) {
      if (degrees.count(d) > 0) {
        csv.add_row({std::to_string(d), std::to_string(degrees.count(d))});
      }
    }
    csv.save(args.get("csv", "fig1.csv"));
    std::printf("\nwrote %s\n", args.get("csv", "fig1.csv").c_str());
  }
  return 0;
}
