// Microbenchmark for the observability layer (src/obs/).
//
// The contract being verified: a trace-span site in a hot path costs one
// relaxed atomic load and no allocation while tracing is disabled. We
// measure
//   * the per-site cost of a disabled span / counter (tight loop, loop
//     overhead subtracted via an empty baseline loop);
//   * the per-site cost of an enabled span (buffer append, both ends);
//   * the end-to-end core decomposition of the *scaled* Cellzome
//     surrogate (the calibrated 1361-protein instance peels in well
//     under a millisecond, too short to measure percent-level overhead
//     against scheduler noise) with tracing off, tracing on, and the
//     SIGPROF sampler running.
// From the disabled per-site cost and the number of span/counter sites
// an instrumented peel actually executes (counted by re-parsing a real
// trace of one decomposition), we derive an upper bound on the
// tracing-disabled overhead as a percentage of the peel time.
//
// Acceptance bars from the issue, both recorded in BENCH_obs.json and
// EXPERIMENTS.md and enforced by scripts/ci.sh:
//   * derived tracing-disabled overhead  <= 0.1%
//   * measured tracing-enabled overhead  <= 5%
// The profiler's overhead at its default ~1 kHz is recorded
// (profiler_overhead_percent, budget < 10%, see obs/profile.hpp) but
// not gated: on a 1-2 core CI box the measurement is noise-bound.
//
// Usage: bench_micro_obs [--seed N] [--proteins N] [--quick] [--json PATH]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "obs/json_check.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

volatile std::uint64_t g_sink = 0;

/// Per-iteration nanoseconds of `body` over `iters` runs.
template <typename Body>
double loop_ns(int iters, const Body& body) {
  hp::Timer timer;
  for (int i = 0; i < iters; ++i) body(i);
  return static_cast<double>(timer.nanoseconds()) / iters;
}

/// Best-of-reps seconds for one core decomposition of `h`.
double best_peel_seconds(const hp::hyper::Hypergraph& h, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    hp::Timer timer;
    g_sink = g_sink + hp::hyper::core_decomposition(h, nullptr).max_core;
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

struct PeelTiming {
  double seconds_off = 0.0;       // tracing disabled
  double seconds_on = 0.0;        // tracing enabled
  double seconds_profiled = 0.0;  // tracing off, SIGPROF sampler on
  std::size_t spans = 0;          // span sites executed per decomposition
  std::size_t counters = 0;       // counter sites executed per decomposition
  std::size_t profile_samples = 0;
};

PeelTiming time_peel(const hp::hyper::Hypergraph& h, int reps) {
  PeelTiming out;

  hp::obs::set_tracing_enabled(false);
  hp::obs::reset_tracing();
  out.seconds_off = best_peel_seconds(h, reps);

  hp::obs::set_tracing_enabled(true);
  for (int r = 0; r < reps; ++r) {
    hp::obs::reset_tracing();
    hp::Timer timer;
    g_sink = g_sink + hp::hyper::core_decomposition(h, nullptr).max_core;
    const double s = timer.seconds();
    if (r == 0 || s < out.seconds_on) out.seconds_on = s;
  }

  // Count the span/counter sites one decomposition actually executes by
  // re-parsing the trace the last repetition left behind.
  std::ostringstream json;
  hp::obs::write_chrome_trace(json);
  const hp::obs::TraceSummary summary =
      hp::obs::summarize_trace(hp::obs::json::parse(json.str()));
  for (const hp::obs::TraceThreadSummary& thread : summary.threads) {
    out.spans += thread.begin_events;
    out.counters += thread.counter_events;
  }

  hp::obs::set_tracing_enabled(false);
  hp::obs::reset_tracing();

  // Same workload under the default ~1 kHz CPU sampler.
  hp::obs::start_profiling();
  out.seconds_profiled = best_peel_seconds(h, reps);
  hp::obs::stop_profiling();
  out.profile_samples = hp::obs::profile_sample_count();
  hp::obs::reset_profiling();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bool quick = args.get_bool("quick", false);
  const std::string json_path = args.get("json", "");

  const int site_iters = quick ? 2'000'000 : 20'000'000;
  const int peel_reps = quick ? 5 : 10;
  const hp::index_t proteins = static_cast<hp::index_t>(
      args.get_int("proteins", quick ? 20000 : 60000));

  std::puts("=== obs layer: span-site cost and peel overhead ablation ===");

  hp::obs::set_tracing_enabled(false);
  hp::obs::reset_tracing();

  const double baseline_ns = loop_ns(site_iters, [](int i) {
    g_sink = g_sink + static_cast<std::uint64_t>(i);
  });
  const double disabled_span_raw_ns = loop_ns(site_iters, [](int i) {
    HP_TRACE_SPAN("obs.bench.site");
    g_sink = g_sink + static_cast<std::uint64_t>(i);
  });
  const double disabled_counter_raw_ns = loop_ns(site_iters, [](int i) {
    hp::obs::trace_counter("obs.bench.counter", 1.0);
    g_sink = g_sink + static_cast<std::uint64_t>(i);
  });

  // Enabled spans append two events; keep the buffer bounded by
  // resetting between batches (outside the timed region is impossible
  // in one loop, so use modest iteration counts instead).
  const int enabled_iters = quick ? 200'000 : 1'000'000;
  hp::obs::set_tracing_enabled(true);
  hp::obs::reset_tracing();
  const double enabled_span_raw_ns = loop_ns(enabled_iters, [](int i) {
    HP_TRACE_SPAN("obs.bench.site");
    g_sink = g_sink + static_cast<std::uint64_t>(i);
  });
  hp::obs::set_tracing_enabled(false);
  hp::obs::reset_tracing();

  const double disabled_span_ns =
      disabled_span_raw_ns > baseline_ns ? disabled_span_raw_ns - baseline_ns
                                         : 0.0;
  const double disabled_counter_ns =
      disabled_counter_raw_ns > baseline_ns
          ? disabled_counter_raw_ns - baseline_ns
          : 0.0;
  const double enabled_span_ns = enabled_span_raw_ns > baseline_ns
                                     ? enabled_span_raw_ns - baseline_ns
                                     : 0.0;

  {
    hp::Table t{{"site", "cost per call"}};
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f ns", disabled_span_ns);
    t.row().cell("span, tracing off").cell(buf);
    std::snprintf(buf, sizeof buf, "%.2f ns", disabled_counter_ns);
    t.row().cell("counter, tracing off").cell(buf);
    std::snprintf(buf, sizeof buf, "%.2f ns", enabled_span_ns);
    t.row().cell("span, tracing on (B+E)").cell(buf);
    t.print();
  }

  hp::bio::CellzomeParams params = hp::bio::scaled_cellzome_params(proteins);
  params.seed = seed;
  const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const PeelTiming peel = time_peel(data.hypergraph, peel_reps);

  // Derived upper bound: every span/counter site the instrumented peel
  // executes costs its disabled per-call price when tracing is off.
  const double derived_overhead_ns =
      static_cast<double>(peel.spans) * disabled_span_ns +
      static_cast<double>(peel.counters) * disabled_counter_ns;
  const double derived_overhead_percent =
      peel.seconds_off > 0.0
          ? 100.0 * derived_overhead_ns / (peel.seconds_off * 1e9)
          : 0.0;
  const double enabled_overhead_percent =
      peel.seconds_off > 0.0
          ? 100.0 * (peel.seconds_on - peel.seconds_off) / peel.seconds_off
          : 0.0;
  const double profiler_overhead_percent =
      peel.seconds_off > 0.0
          ? 100.0 * (peel.seconds_profiled - peel.seconds_off) /
                peel.seconds_off
          : 0.0;

  std::printf(
      "\ncore decomposition (scaled surrogate, %lld proteins, best of %d):\n"
      "  tracing off:   %s\n"
      "  tracing on:    %s  (%zu spans, %zu counter samples per peel)\n"
      "  profiler on:   %s  (%zu stack samples at ~1 kHz)\n"
      "  measured enabled overhead:  %.2f%%  (budget <= 5%%)\n"
      "  derived disabled overhead:  %.5f%%  (span sites x disabled cost, "
      "budget <= 0.1%%)\n"
      "  profiler overhead:          %.2f%%  (recorded, not gated)\n",
      static_cast<long long>(proteins), peel_reps,
      hp::format_duration(peel.seconds_off).c_str(),
      hp::format_duration(peel.seconds_on).c_str(), peel.spans, peel.counters,
      hp::format_duration(peel.seconds_profiled).c_str(),
      peel.profile_samples, enabled_overhead_percent,
      derived_overhead_percent, profiler_overhead_percent);

  const bool disabled_ok = derived_overhead_percent <= 0.1;
  const bool enabled_ok = enabled_overhead_percent <= 5.0;
  std::printf("tracing-disabled overhead within 0.1%% budget: %s\n",
              disabled_ok ? "yes" : "NO");
  std::printf("tracing-enabled overhead within 5%% budget: %s\n",
              enabled_ok ? "yes" : "NO");

  if (!json_path.empty()) {
    std::ofstream out{json_path};
    out << "{\n  \"benchmark\": \"bench_micro_obs\",\n"
        << "  \"surrogate_proteins\": " << proteins << ",\n"
        << "  \"baseline_loop_ns\": " << baseline_ns << ",\n"
        << "  \"disabled_span_ns\": " << disabled_span_ns << ",\n"
        << "  \"disabled_counter_ns\": " << disabled_counter_ns << ",\n"
        << "  \"enabled_span_ns\": " << enabled_span_ns << ",\n"
        << "  \"peel_seconds_tracing_off\": " << peel.seconds_off << ",\n"
        << "  \"peel_seconds_tracing_on\": " << peel.seconds_on << ",\n"
        << "  \"peel_seconds_profiled\": " << peel.seconds_profiled << ",\n"
        << "  \"profiler_samples\": " << peel.profile_samples << ",\n"
        << "  \"trace_spans_per_peel\": " << peel.spans << ",\n"
        << "  \"trace_counters_per_peel\": " << peel.counters << ",\n"
        << "  \"derived_disabled_overhead_percent\": "
        << derived_overhead_percent << ",\n"
        << "  \"measured_enabled_overhead_percent\": "
        << enabled_overhead_percent << ",\n"
        << "  \"profiler_overhead_percent\": " << profiler_overhead_percent
        << ",\n"
        << "  \"disabled_within_0_1_percent\": "
        << (disabled_ok ? "true" : "false") << ",\n"
        << "  \"enabled_within_5_percent\": "
        << (enabled_ok ? "true" : "false") << "\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return disabled_ok && enabled_ok ? 0 : 1;
}
