// Microbenchmark for the observability layer (src/obs/).
//
// The contract being verified: a trace-span site in a hot path costs one
// relaxed atomic load and no allocation while tracing is disabled. We
// measure
//   * the per-site cost of a disabled span / counter (tight loop, loop
//     overhead subtracted via an empty baseline loop);
//   * the per-site cost of an enabled span (buffer append, both ends);
//   * the end-to-end core decomposition of the Cellzome surrogate with
//     tracing off and on.
// From the disabled per-site cost and the number of span/counter sites
// an instrumented peel actually executes (counted by re-parsing a real
// trace of one decomposition), we derive an upper bound on the
// tracing-disabled overhead as a percentage of the peel time. The
// acceptance bar from the issue is < 5%; the result is recorded in
// BENCH_obs.json and EXPERIMENTS.md.
//
// Usage: bench_micro_obs [--seed N] [--quick] [--json PATH]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "obs/json_check.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

volatile std::uint64_t g_sink = 0;

/// Per-iteration nanoseconds of `body` over `iters` runs.
template <typename Body>
double loop_ns(int iters, const Body& body) {
  hp::Timer timer;
  for (int i = 0; i < iters; ++i) body(i);
  return static_cast<double>(timer.nanoseconds()) / iters;
}

struct PeelTiming {
  double seconds_off = 0.0;  // tracing disabled
  double seconds_on = 0.0;   // tracing enabled
  std::size_t spans = 0;     // span sites executed per decomposition
  std::size_t counters = 0;  // counter sites executed per decomposition
};

PeelTiming time_peel(const hp::hyper::Hypergraph& h, int reps) {
  PeelTiming out;

  hp::obs::set_tracing_enabled(false);
  hp::obs::reset_tracing();
  {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      hp::Timer timer;
      g_sink = g_sink + hp::hyper::core_decomposition(h, nullptr).max_core;
      const double s = timer.seconds();
      if (r == 0 || s < best) best = s;
    }
    out.seconds_off = best;
  }

  hp::obs::set_tracing_enabled(true);
  {
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      hp::obs::reset_tracing();
      hp::Timer timer;
      g_sink = g_sink + hp::hyper::core_decomposition(h, nullptr).max_core;
      const double s = timer.seconds();
      if (r == 0 || s < best) best = s;
    }
    out.seconds_on = best;
  }

  // Count the span/counter sites one decomposition actually executes by
  // re-parsing the trace the last repetition left behind.
  std::ostringstream json;
  hp::obs::write_chrome_trace(json);
  const hp::obs::TraceSummary summary =
      hp::obs::summarize_trace(hp::obs::json::parse(json.str()));
  for (const hp::obs::TraceThreadSummary& thread : summary.threads) {
    out.spans += thread.begin_events;
    out.counters += thread.counter_events;
  }

  hp::obs::set_tracing_enabled(false);
  hp::obs::reset_tracing();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bool quick = args.get_bool("quick", false);
  const std::string json_path = args.get("json", "");

  const int site_iters = quick ? 2'000'000 : 20'000'000;
  const int peel_reps = quick ? 3 : 10;

  std::puts("=== obs layer: span-site cost and peel overhead ablation ===");

  hp::obs::set_tracing_enabled(false);
  hp::obs::reset_tracing();

  const double baseline_ns = loop_ns(site_iters, [](int i) {
    g_sink = g_sink + static_cast<std::uint64_t>(i);
  });
  const double disabled_span_raw_ns = loop_ns(site_iters, [](int i) {
    HP_TRACE_SPAN("obs.bench.site");
    g_sink = g_sink + static_cast<std::uint64_t>(i);
  });
  const double disabled_counter_raw_ns = loop_ns(site_iters, [](int i) {
    hp::obs::trace_counter("obs.bench.counter", 1.0);
    g_sink = g_sink + static_cast<std::uint64_t>(i);
  });

  // Enabled spans append two events; keep the buffer bounded by
  // resetting between batches (outside the timed region is impossible
  // in one loop, so use modest iteration counts instead).
  const int enabled_iters = quick ? 200'000 : 1'000'000;
  hp::obs::set_tracing_enabled(true);
  hp::obs::reset_tracing();
  const double enabled_span_raw_ns = loop_ns(enabled_iters, [](int i) {
    HP_TRACE_SPAN("obs.bench.site");
    g_sink = g_sink + static_cast<std::uint64_t>(i);
  });
  hp::obs::set_tracing_enabled(false);
  hp::obs::reset_tracing();

  const double disabled_span_ns =
      disabled_span_raw_ns > baseline_ns ? disabled_span_raw_ns - baseline_ns
                                         : 0.0;
  const double disabled_counter_ns =
      disabled_counter_raw_ns > baseline_ns
          ? disabled_counter_raw_ns - baseline_ns
          : 0.0;
  const double enabled_span_ns = enabled_span_raw_ns > baseline_ns
                                     ? enabled_span_raw_ns - baseline_ns
                                     : 0.0;

  {
    hp::Table t{{"site", "cost per call"}};
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f ns", disabled_span_ns);
    t.row().cell("span, tracing off").cell(buf);
    std::snprintf(buf, sizeof buf, "%.2f ns", disabled_counter_ns);
    t.row().cell("counter, tracing off").cell(buf);
    std::snprintf(buf, sizeof buf, "%.2f ns", enabled_span_ns);
    t.row().cell("span, tracing on (B+E)").cell(buf);
    t.print();
  }

  hp::bio::CellzomeParams params;
  params.seed = seed;
  const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const PeelTiming peel = time_peel(data.hypergraph, peel_reps);

  // Derived upper bound: every span/counter site the instrumented peel
  // executes costs its disabled per-call price when tracing is off.
  const double derived_overhead_ns =
      static_cast<double>(peel.spans) * disabled_span_ns +
      static_cast<double>(peel.counters) * disabled_counter_ns;
  const double derived_overhead_percent =
      peel.seconds_off > 0.0
          ? 100.0 * derived_overhead_ns / (peel.seconds_off * 1e9)
          : 0.0;
  const double enabled_overhead_percent =
      peel.seconds_off > 0.0
          ? 100.0 * (peel.seconds_on - peel.seconds_off) / peel.seconds_off
          : 0.0;

  std::printf(
      "\ncore decomposition (cellzome surrogate, best of %d):\n"
      "  tracing off: %s\n"
      "  tracing on:  %s  (%zu spans, %zu counter samples per peel)\n"
      "  measured enabled overhead:  %.2f%%\n"
      "  derived disabled overhead:  %.4f%%  (span sites x disabled cost)\n",
      peel_reps, hp::format_duration(peel.seconds_off).c_str(),
      hp::format_duration(peel.seconds_on).c_str(), peel.spans, peel.counters,
      enabled_overhead_percent, derived_overhead_percent);

  const bool within_budget = derived_overhead_percent < 5.0;
  std::printf("tracing-disabled overhead within 5%% budget: %s\n",
              within_budget ? "yes" : "NO");

  if (!json_path.empty()) {
    std::ofstream out{json_path};
    out << "{\n  \"benchmark\": \"bench_micro_obs\",\n"
        << "  \"baseline_loop_ns\": " << baseline_ns << ",\n"
        << "  \"disabled_span_ns\": " << disabled_span_ns << ",\n"
        << "  \"disabled_counter_ns\": " << disabled_counter_ns << ",\n"
        << "  \"enabled_span_ns\": " << enabled_span_ns << ",\n"
        << "  \"peel_seconds_tracing_off\": " << peel.seconds_off << ",\n"
        << "  \"peel_seconds_tracing_on\": " << peel.seconds_on << ",\n"
        << "  \"trace_spans_per_peel\": " << peel.spans << ",\n"
        << "  \"trace_counters_per_peel\": " << peel.counters << ",\n"
        << "  \"derived_disabled_overhead_percent\": "
        << derived_overhead_percent << ",\n"
        << "  \"measured_enabled_overhead_percent\": "
        << enabled_overhead_percent << ",\n"
        << "  \"within_5_percent\": " << (within_budget ? "true" : "false")
        << "\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return within_budget ? 0 : 1;
}
