// Snapshot-open ablation for the mmap'd zero-copy format
// (src/core/snapshot/, DESIGN.md section 13).
//
// Workloads, per instance (the calibrated 1,361-protein surrogate and a
// scaled one for the CI gate) -- every row is "bytes on disk -> usable
// Hypergraph", measured best-of-N:
//
//   * text parse -- load_text: read + tokenize + builder. The format
//     every other loader is differentially tested against, and the
//     baseline the snapshot gate is measured from.
//   * binary parse -- load_binary: read + per-pin decode + builder.
//     What a non-mmap binary format buys on its own.
//   * snapshot open (warm) -- snapshot::open with the file already in
//     the page cache: mmap + header/offset-table checks, zero per-pin
//     work. This is the gated row.
//   * snapshot open (cold) -- the same after asking the kernel to drop
//     the file's cached pages (posix_fadvise DONTNEED; Linux only),
//     so the cost of faulting pages back in is visible.
//   * snapshot open (varint) -- the compressed variant: mmap + offset
//     copy + per-pin varint decode into owned storage. Trades the
//     zero-copy open for the smallest file.
//
// The CI gate (scripts/ci.sh) asserts warm snapshot open is >= 50x
// faster than the text parse on the scaled surrogate ("gate_speedup" in
// BENCH_snapshot.json).
//
// The run self-checks: every loader's result must equal the text
// loader's structurally (operator==) and pass validate().
//
// Usage: bench_micro_snapshot [--seed N] [--proteins N] [--quick] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#if defined(__linux__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "bio/cellzome_synth.hpp"
#include "core/binary_io.hpp"
#include "core/hypergraph.hpp"
#include "core/hypergraph_io.hpp"
#include "core/snapshot/snapshot.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using hp::index_t;
using hp::hyper::Hypergraph;

struct WorkloadTiming {
  std::string name;
  double seconds = 0.0;      // best-of-N open-to-usable latency
  std::size_t file_bytes = 0;
  double speedup = 0.0;      // text parse / this
};

struct InstanceTiming {
  std::string name;
  hp::count_t num_vertices = 0;
  hp::count_t num_edges = 0;
  hp::count_t num_pins = 0;
  std::vector<WorkloadTiming> workloads;
};

std::size_t file_size(const std::string& path) {
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  return in ? static_cast<std::size_t>(in.tellg()) : 0;
}

/// Ask the kernel to forget the file's cached pages so the next open
/// faults them back from disk. Returns false where unsupported; the
/// cold row is then skipped rather than silently reported warm.
bool drop_page_cache(const std::string& path) {
#if defined(__linux__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  ::fsync(fd);  // DONTNEED only drops clean pages
  const bool ok = ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return false;
#endif
}

/// Best-of-N latency of `load`, with the result self-checked against
/// the text-loaded reference each repetition.
double time_loader(const std::function<Hypergraph()>& load,
                   const Hypergraph& reference, const char* what, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    hp::Timer timer;
    const Hypergraph h = load();
    const double s = timer.seconds();
    if (rep == 0 || s < best) best = s;
    if (!(h == reference)) {
      std::fprintf(stderr,
                   "bench_micro_snapshot: %s produced a different "
                   "hypergraph than the text loader\n",
                   what);
      std::exit(1);
    }
  }
  return best;
}

InstanceTiming run_instance(const std::string& name, const Hypergraph& base,
                            bool quick) {
  const int parse_reps = quick ? 2 : 4;
  const int open_reps = quick ? 8 : 16;

  const std::string text_path = "bench_snapshot_tmp.hyper";
  const std::string binary_path = "bench_snapshot_tmp.hpb";
  const std::string snap_path = "bench_snapshot_tmp.hps";
  const std::string varint_path = "bench_snapshot_tmp_varint.hps";
  hp::hyper::save_text(base, text_path);
  hp::hyper::save_binary(base, binary_path);
  hp::hyper::snapshot::save(base, snap_path);
  hp::hyper::snapshot::SaveOptions varint;
  varint.codec = hp::hyper::snapshot::Codec::kVarint;
  hp::hyper::snapshot::save(base, varint_path, varint);

  // The differential reference, and a one-time deep check that the
  // mapped view is structurally valid (the timed loop only compares).
  const Hypergraph reference = hp::hyper::load_text(text_path);
  hp::hyper::validate(hp::hyper::snapshot::open(snap_path));
  hp::hyper::validate(hp::hyper::snapshot::open(varint_path));

  InstanceTiming out;
  out.name = name;
  out.num_vertices = base.num_vertices();
  out.num_edges = base.num_edges();
  out.num_pins = base.num_pins();

  out.workloads.push_back(
      {"text parse",
       time_loader([&] { return hp::hyper::load_text(text_path); }, reference,
                   "text parse", parse_reps),
       file_size(text_path), 0.0});
  out.workloads.push_back(
      {"binary parse",
       time_loader([&] { return hp::hyper::load_binary(binary_path); },
                   reference, "binary parse", parse_reps),
       file_size(binary_path), 0.0});
  out.workloads.push_back(
      {"snapshot open (warm)",
       time_loader([&] { return hp::hyper::snapshot::open(snap_path); },
                   reference, "snapshot open", open_reps),
       file_size(snap_path), 0.0});
  if (drop_page_cache(snap_path)) {
    // Worst-of-N would time later (warm) reps; instead drop the cache
    // before every rep and keep the best, so the row stays cold.
    double best = 0.0;
    for (int rep = 0; rep < open_reps; ++rep) {
      drop_page_cache(snap_path);
      hp::Timer timer;
      const Hypergraph h = hp::hyper::snapshot::open(snap_path);
      // Touch every adjacency page: mmap defers the read to the fault.
      hp::count_t sum = 0;
      for (index_t v : h.edge_adjacency()) sum += v;
      const double s = timer.seconds();
      if (rep == 0 || s < best) best = s;
      if (sum == static_cast<hp::count_t>(-1)) std::exit(1);  // keep `sum` live
    }
    out.workloads.push_back({"snapshot open (cold)", best,
                             file_size(snap_path), 0.0});
  }
  out.workloads.push_back(
      {"snapshot open (varint)",
       time_loader([&] { return hp::hyper::snapshot::open(varint_path); },
                   reference, "varint snapshot open", open_reps),
       file_size(varint_path), 0.0});

  const double text_seconds = out.workloads.front().seconds;
  for (WorkloadTiming& w : out.workloads) {
    w.speedup = w.seconds > 0.0 ? text_seconds / w.seconds : 0.0;
  }

  for (const std::string& p :
       {text_path, binary_path, snap_path, varint_path}) {
    std::remove(p.c_str());
  }
  return out;
}

void print_instance(const InstanceTiming& inst) {
  std::printf("\n--- %s (|V| = %llu, |F| = %llu, |E| = %llu) ---\n",
              inst.name.c_str(),
              static_cast<unsigned long long>(inst.num_vertices),
              static_cast<unsigned long long>(inst.num_edges),
              static_cast<unsigned long long>(inst.num_pins));
  hp::Table t{{"loader", "latency", "file bytes", "vs text"}};
  for (const WorkloadTiming& w : inst.workloads) {
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.1fx", w.speedup);
    t.row()
        .cell(w.name)
        .cell(hp::format_duration(w.seconds))
        .cell(std::to_string(w.file_bytes))
        .cell(speedup);
  }
  t.print();
}

void write_json(const std::string& path,
                const std::vector<InstanceTiming>& instances,
                double gate_speedup) {
  std::ofstream out{path};
  out << "{\n  \"benchmark\": \"bench_micro_snapshot\",\n"
      << "  \"gate_speedup\": " << gate_speedup << ",\n"
      << "  \"instances\": [\n";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const InstanceTiming& inst = instances[i];
    out << "    {\n      \"name\": \"" << inst.name << "\",\n"
        << "      \"num_vertices\": " << inst.num_vertices << ",\n"
        << "      \"num_edges\": " << inst.num_edges << ",\n"
        << "      \"num_pins\": " << inst.num_pins
        << ",\n      \"workloads\": [\n";
    for (std::size_t j = 0; j < inst.workloads.size(); ++j) {
      const WorkloadTiming& w = inst.workloads[j];
      out << "        {\"name\": \"" << w.name
          << "\", \"seconds\": " << w.seconds
          << ", \"file_bytes\": " << w.file_bytes
          << ", \"speedup\": " << w.speedup << "}"
          << (j + 1 < inst.workloads.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (i + 1 < instances.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bool quick = args.get_bool("quick", false);
  const std::string json_path = args.get("json", "");
  // The gate is defined on the 100k surrogate, so --quick does not
  // shrink the instance (only the repetition counts).
  const index_t scaled_target =
      static_cast<index_t>(args.get_int("proteins", 100000));

  std::printf("=== snapshot format: mmap open vs parse-based loaders ===\n");

  std::vector<InstanceTiming> instances;
  {
    hp::bio::CellzomeParams params;
    params.seed = seed;
    const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
    instances.push_back(
        run_instance("cellzome calibrated", data.hypergraph, quick));
  }
  {
    hp::bio::CellzomeParams params =
        hp::bio::scaled_cellzome_params(scaled_target);
    params.seed = seed;
    const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
    instances.push_back(
        run_instance("cellzome scaled", data.hypergraph, quick));
  }

  for (const InstanceTiming& inst : instances) print_instance(inst);

  // Gate value: warm mmap open vs text parse on the scaled instance.
  double gate_speedup = 0.0;
  for (const WorkloadTiming& w : instances.back().workloads) {
    if (w.name == "snapshot open (warm)") gate_speedup = w.speedup;
  }
  std::printf("\nscaled-surrogate gate speedup (warm open vs text parse): "
              "%.1fx\n",
              gate_speedup);

  if (!json_path.empty()) {
    write_json(json_path, instances, gate_speedup);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
