// Section 3 reproduction: the core proteome.
//
// Paper results:
//   * maximum core of the yeast protein-complex hypergraph: a 6-core
//     with 41 proteins and 54 complexes;
//   * of the 41 core proteins, 9 are unknown / of unknown function;
//     22 of the 32 known ones are essential (background: 878 essential
//     vs 3,158 non-essential genes); 24 of 41 have reported homologs;
//   * DIP protein-protein interaction graphs: yeast (4,746 proteins)
//     max core k = 10 with 33 proteins; drosophila max core k = 8 with
//     577 proteins.
//
// Usage: bench_sec3_core_proteome [--seed N] [--trace out.json]
#include <cstdio>
#include <string>

#include "bio/cellzome_synth.hpp"
#include "bio/core_recovery.hpp"
#include "bio/dip_surrogate.hpp"
#include "bio/enrichment.hpp"
#include "core/context/analysis_context.hpp"
#include "core/kcore.hpp"
#include "core/projection.hpp"
#include "graph/graph_kcore.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  hp::bio::CellzomeParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) hp::obs::set_tracing_enabled(true);

  hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const hp::hyper::AnalysisContext ctx{std::move(data.hypergraph)};
  const hp::hyper::Hypergraph& h = ctx.hypergraph();

  hp::Timer timer;
  const hp::hyper::HyperCoreResult& cores = ctx.cores();
  const double core_seconds = timer.seconds();
  const auto core_vertices = cores.core_vertices(cores.max_core);
  const auto core_edges = cores.core_edges(cores.max_core);

  std::puts("=== Section 3: maximum core of the yeast hypergraph ===\n");
  {
    hp::Table t{{"quantity", "paper", "measured"}};
    t.row().cell("maximum core k").cell("6").cell(
        static_cast<std::uint64_t>(cores.max_core));
    t.row().cell("core proteins").cell("41").cell(
        static_cast<std::uint64_t>(core_vertices.size()));
    t.row().cell("core complexes").cell("54").cell(
        static_cast<std::uint64_t>(core_edges.size()));
    t.row()
        .cell("k-core run time")
        .cell("0.47 s (2 GHz Xeon)")
        .cell(hp::format_duration(core_seconds));
    t.print();
  }

  std::puts("\n--- k-core sizes per level ---");
  {
    hp::Table t{{"k", "vertices in k-core", "hyperedges in k-core"}};
    for (std::size_t k = 0; k < cores.level_vertices.size(); ++k) {
      t.row()
          .cell(static_cast<std::uint64_t>(k))
          .cell(static_cast<std::uint64_t>(cores.level_vertices[k]))
          .cell(static_cast<std::uint64_t>(cores.level_edges[k]));
    }
    t.print();
  }

  // Enrichment of the core proteome (simulated annotation source
  // calibrated to SGD / CYGD rates; see DESIGN.md).
  hp::Rng rng{params.seed ^ 0xB10ULL};
  const hp::bio::AnnotationSet annotations = hp::bio::simulate_annotations(
      h.num_vertices(), core_vertices, {}, rng);
  const hp::bio::CoreProteomeReport report =
      hp::bio::core_proteome_report(core_vertices, annotations);

  std::puts("\n--- Core proteome annotation (paper vs simulated source) ---");
  {
    hp::Table t{{"quantity", "paper", "measured"}};
    t.row().cell("core proteins").cell("41").cell(
        static_cast<std::uint64_t>(report.core_size));
    t.row().cell("unknown / unknown function").cell("9").cell(
        static_cast<std::uint64_t>(report.core_unknown));
    t.row().cell("known").cell("32").cell(
        static_cast<std::uint64_t>(report.core_known));
    t.row().cell("known and essential").cell("22").cell(
        static_cast<std::uint64_t>(report.core_known_essential));
    t.row().cell("with homologs").cell("24").cell(
        static_cast<std::uint64_t>(report.core_homologs));
    t.print();
  }
  std::printf(
      "\nessential enrichment: fold = %.2f, hypergeometric p = %.2e\n",
      report.essential_enrichment.fold_enrichment,
      report.essential_enrichment.p_value);
  std::printf("homolog enrichment:   fold = %.2f, hypergeometric p = %.2e\n",
              report.homolog_enrichment.fold_enrichment,
              report.homolog_enrichment.p_value);

  // Planted-module retrieval: the surrogate knows its true core module,
  // so "the maximum core identifies the core proteome" becomes a
  // measurable precision/recall task -- and the paper's warning that
  // graph cores on clique-expanded data are error-prone can be
  // quantified on the same input.
  std::puts("\n--- Planted core module retrieval (surrogate ground truth) ---");
  {
    std::vector<hp::index_t> planted;
    for (hp::index_t v = 0; v < params.core_proteins; ++v) {
      planted.push_back(v);
    }
    const hp::bio::RecoveryStats hyper_stats =
        hp::bio::recovery_stats(core_vertices, planted);

    const hp::graph::Graph& clique = ctx.clique_projection();
    const hp::graph::CoreDecomposition gcores =
        hp::graph::core_decomposition(clique);
    const auto graph_core = gcores.max_core_vertices();
    const hp::bio::RecoveryStats graph_stats =
        hp::bio::recovery_stats(graph_core, planted);

    hp::Table t{{"detector", "core size", "precision", "recall", "F1"}};
    t.row()
        .cell("hypergraph max core (this paper)")
        .cell(static_cast<std::uint64_t>(core_vertices.size()))
        .cell(hyper_stats.precision, 3)
        .cell(hyper_stats.recall, 3)
        .cell(hyper_stats.f1, 3);
    t.row()
        .cell("clique-expansion graph max core")
        .cell(static_cast<std::uint64_t>(graph_core.size()))
        .cell(graph_stats.precision, 3)
        .cell(graph_stats.recall, 3)
        .cell(graph_stats.f1, 3);
    t.print();
    std::puts(
        "the clique-expanded graph core inherits the expansion's "
        "artificial cliques (the \"error-prone\" usage the paper warns "
        "about in section 3); the hypergraph core tracks the planted "
        "module far more faithfully.");
  }

  // DIP PPI comparison on graph surrogates at the published scales.
  // Yeast: a pure power-law (Chung-Lu) graph calibrated to the DIP
  // density gives a deep, small core like the paper's k = 10 / 33.
  // Drosophila: the Giot et al. Y2H map has a large moderately dense
  // region, modelled as a power-law periphery plus an Erdos-Renyi block
  // of ~600 proteins, giving the paper's shallow-but-large core
  // (k = 8 with 577 proteins).
  std::puts("\n--- Graph k-cores of PPI network surrogates (DIP) ---");
  {
    hp::Table t{{"network", "proteins", "paper max core", "paper core size",
                 "measured max core", "measured core size", "time"}};

    const auto report = [&t](const char* name, const char* paper_k,
                             const char* paper_size,
                             const hp::graph::Graph& g) {
      hp::Timer gt;
      const hp::graph::CoreDecomposition d = hp::graph::core_decomposition(g);
      const double gsec = gt.seconds();
      t.row()
          .cell(name)
          .cell(static_cast<std::uint64_t>(g.num_vertices()))
          .cell(paper_k)
          .cell(paper_size)
          .cell(static_cast<std::uint64_t>(d.max_core))
          .cell(static_cast<std::uint64_t>(d.max_core_vertices().size()))
          .cell(hp::format_duration(gsec));
    };

    {
      hp::Rng grng{params.seed ^ 4746ULL};
      report("yeast PPI (DIP)", "10", "33",
             hp::bio::yeast_ppi_surrogate({}, grng));
    }
    {
      hp::Rng grng{params.seed ^ 7000ULL};
      report("drosophila PPI (DIP)", "8", "577",
             hp::bio::fly_ppi_surrogate({}, grng));
    }
    t.print();
  }
  std::puts(
      "\nqualitative relation reproduced: PPI *graph* cores are deeper "
      "than the protein-complex *hypergraph* core, and the drosophila "
      "core is shallower but far larger than the yeast core.");
  if (!trace_path.empty()) {
    hp::obs::write_chrome_trace_file(trace_path);
    std::printf("\nwrote trace %s\n", trace_path.c_str());
  }
  return 0;
}
