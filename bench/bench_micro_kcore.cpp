// Ablation A + parallel extension: microbenchmarks of the hypergraph
// k-core implementations.
//
//   * overlap-maintaining peel (the paper's algorithm, Fig. 4)
//   * naive set-comparison reference (what the paper argues against)
//   * bulk-synchronous parallel peel (the "parallel algorithm" the
//     paper's section 3 calls for), at 1/2/4 threads
//
// Size sweep over random hypergraphs and a Cellzome-scale instance.
#include <benchmark/benchmark.h>

#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "core/kcore_naive.hpp"
#include "core/kcore_parallel.hpp"
#include "util/rng.hpp"

namespace {

hp::hyper::Hypergraph random_hypergraph(std::uint64_t seed,
                                        hp::index_t num_vertices,
                                        hp::index_t num_edges,
                                        hp::index_t max_size) {
  hp::Rng rng{seed};
  hp::hyper::HypergraphBuilder builder{num_vertices};
  std::vector<hp::index_t> members;
  for (hp::index_t e = 0; e < num_edges; ++e) {
    const hp::index_t size = 2 + static_cast<hp::index_t>(
                                     rng.uniform(max_size - 1));
    members.clear();
    for (hp::index_t i = 0; i < size; ++i) {
      members.push_back(
          static_cast<hp::index_t>(rng.uniform(num_vertices)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

const hp::hyper::Hypergraph& cellzome() {
  static const hp::hyper::Hypergraph h =
      hp::bio::cellzome_surrogate().hypergraph;
  return h;
}

void BM_KCoreOverlap(benchmark::State& state) {
  const auto h = random_hypergraph(42, static_cast<hp::index_t>(state.range(0)),
                                   static_cast<hp::index_t>(state.range(0)),
                                   8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::core_decomposition(h));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KCoreOverlap)->Range(64, 4096)->Complexity();

void BM_KCoreNaive(benchmark::State& state) {
  const auto h = random_hypergraph(42, static_cast<hp::index_t>(state.range(0)),
                                   static_cast<hp::index_t>(state.range(0)),
                                   8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::core_decomposition_naive(h));
  }
  state.SetComplexityN(state.range(0));
}
// The naive reference is quadratic-plus; cap the sweep so the binary
// still completes quickly.
BENCHMARK(BM_KCoreNaive)->Range(64, 1024)->Complexity();

void BM_KCoreParallel(benchmark::State& state) {
  const auto h = random_hypergraph(42, 2048, 2048, 8);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hp::hyper::core_decomposition_parallel(h, threads));
  }
}
BENCHMARK(BM_KCoreParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_KCoreCellzomeOverlap(benchmark::State& state) {
  const auto& h = cellzome();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::core_decomposition(h));
  }
}
BENCHMARK(BM_KCoreCellzomeOverlap);

void BM_KCoreCellzomeNaive(benchmark::State& state) {
  const auto& h = cellzome();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::core_decomposition_naive(h));
  }
}
BENCHMARK(BM_KCoreCellzomeNaive);

void BM_KCoreCellzomeParallel(benchmark::State& state) {
  const auto& h = cellzome();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::core_decomposition_parallel(h));
  }
}
BENCHMARK(BM_KCoreCellzomeParallel);

}  // namespace

BENCHMARK_MAIN();
