// Ablation A + parallel extension: microbenchmarks of the hypergraph
// k-core implementations.
//
//   * overlap-maintaining peel (the paper's algorithm, Fig. 4)
//   * naive set-comparison reference (what the paper argues against)
//   * bulk-synchronous parallel peel (the "parallel algorithm" the
//     paper's section 3 calls for), at 1/2/4 threads
//
// Size sweep over random hypergraphs and a Cellzome-scale instance.
//
// BM_KCoreOverlapMapBaseline preserves the pre-substrate implementation
// (one std::unordered_map row per hyperedge, decremented pair by pair)
// so the FlatOverlapTracker rewrite stays honest: the flat CSR-of-rows
// peel must be no slower than this baseline. Substrate counters
// (overlap decrements, containment probes, peel rounds) are exported on
// the Cellzome runs so the paper's O(|E| (Delta_2,F + Delta_V log
// Delta_2,F)) bound is empirically visible.
// Frontier ablation mode (scripts/ci.sh): invoked with --quick/--json,
// the binary skips google-benchmark and instead times the frontier
// peeling engine against the legacy scan-and-stamp engine on a scaled
// Cellzome surrogate (--proteins, >= 10^6 in CI), self-checking that
// both engines produce bit-identical decompositions before any timing,
// and writes BENCH_kcore.json for the >= 2x speedup gate at 16 threads.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bio/cellzome_synth.hpp"
#include "core/kcore.hpp"
#include "core/kcore_naive.hpp"
#include "core/kcore_parallel.hpp"
#include "par/thread_pool.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

/// The retired map-based peel (kcore.cpp as of the pre-substrate tree),
/// kept verbatim-in-spirit as the ablation baseline.
class MapPeelBaseline {
 public:
  explicit MapPeelBaseline(const hp::hyper::Hypergraph& h)
      : h_(h),
        rows_(h.num_edges()),
        vertex_alive_(h.num_vertices(), true),
        edge_alive_(h.num_edges(), true),
        vertex_degree_(h.num_vertices()),
        edge_size_(h.num_edges()),
        in_queue_(h.num_vertices(), false),
        alive_vertex_count_(h.num_vertices()),
        alive_edge_count_(h.num_edges()) {
    using hp::index_t;
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      vertex_degree_[v] = h.vertex_degree(v);
      const auto edges = h.edges_of(v);
      for (std::size_t i = 0; i < edges.size(); ++i) {
        for (std::size_t j = i + 1; j < edges.size(); ++j) {
          ++rows_[edges[i]][edges[j]];
          ++rows_[edges[j]][edges[i]];
        }
      }
    }
    for (index_t e = 0; e < h.num_edges(); ++e) {
      edge_size_[e] = h.edge_size(e);
    }
  }

  hp::hyper::HyperCoreResult run() {
    using hp::index_t;
    hp::hyper::HyperCoreResult result;
    result.vertex_core.assign(h_.num_vertices(), 0);
    result.edge_core.assign(h_.num_edges(), 0);
    for (index_t f = 0; f < h_.num_edges(); ++f) {
      if (edge_alive_[f] && find_container(f) != hp::kInvalidIndex) {
        delete_edge(f, 0, result.edge_core);
      }
    }
    result.level_vertices.push_back(alive_vertex_count_);
    result.level_edges.push_back(alive_edge_count_);
    for (index_t k = 1;; ++k) {
      for (index_t v = 0; v < h_.num_vertices(); ++v) {
        if (vertex_alive_[v] && vertex_degree_[v] < k) enqueue(v);
      }
      while (!queue_.empty()) {
        const index_t v = queue_.back();
        queue_.pop_back();
        in_queue_[v] = false;
        if (!vertex_alive_[v]) continue;
        delete_vertex(v, k, result);
      }
      if (alive_vertex_count_ == 0) {
        result.max_core = k - 1;
        break;
      }
      result.level_vertices.push_back(alive_vertex_count_);
      result.level_edges.push_back(alive_edge_count_);
    }
    return result;
  }

 private:
  using index_t = hp::index_t;

  void enqueue(index_t v) {
    if (!in_queue_[v]) {
      in_queue_[v] = true;
      queue_.push_back(v);
    }
  }

  index_t find_container(index_t f) const {
    const index_t size_f = edge_size_[f];
    if (size_f == 0) return f;
    for (const auto& [g, ov] : rows_[f]) {
      if (!edge_alive_[g] || ov == 0) continue;
      if (ov == size_f) return g;
    }
    return hp::kInvalidIndex;
  }

  void delete_vertex(index_t v, index_t k, hp::hyper::HyperCoreResult& out) {
    vertex_alive_[v] = false;
    --alive_vertex_count_;
    out.vertex_core[v] = k - 1;
    touched_.clear();
    for (index_t e : h_.edges_of(v)) {
      if (edge_alive_[e]) touched_.push_back(e);
    }
    for (std::size_t i = 0; i < touched_.size(); ++i) {
      for (std::size_t j = i + 1; j < touched_.size(); ++j) {
        --rows_[touched_[i]][touched_[j]];
        --rows_[touched_[j]][touched_[i]];
      }
    }
    for (index_t e : touched_) --edge_size_[e];
    for (index_t f : touched_) {
      if (!edge_alive_[f]) continue;
      if (find_container(f) != hp::kInvalidIndex) {
        delete_edge(f, k, out.edge_core);
      }
    }
  }

  void delete_edge(index_t f, index_t k, std::vector<index_t>& edge_core) {
    edge_alive_[f] = false;
    --alive_edge_count_;
    if (k >= 1) edge_core[f] = k - 1;
    for (index_t w : h_.vertices_of(f)) {
      if (!vertex_alive_[w]) continue;
      --vertex_degree_[w];
      if (k >= 1 && vertex_degree_[w] < k) enqueue(w);
    }
  }

  const hp::hyper::Hypergraph& h_;
  std::vector<std::unordered_map<index_t, index_t>> rows_;
  std::vector<bool> vertex_alive_;
  std::vector<bool> edge_alive_;
  std::vector<index_t> vertex_degree_;
  std::vector<index_t> edge_size_;
  std::vector<bool> in_queue_;
  std::vector<index_t> queue_;
  std::vector<index_t> touched_;
  index_t alive_vertex_count_ = 0;
  index_t alive_edge_count_ = 0;
};

hp::hyper::Hypergraph random_hypergraph(std::uint64_t seed,
                                        hp::index_t num_vertices,
                                        hp::index_t num_edges,
                                        hp::index_t max_size) {
  hp::Rng rng{seed};
  hp::hyper::HypergraphBuilder builder{num_vertices};
  std::vector<hp::index_t> members;
  for (hp::index_t e = 0; e < num_edges; ++e) {
    const hp::index_t size = 2 + static_cast<hp::index_t>(
                                     rng.uniform(max_size - 1));
    members.clear();
    for (hp::index_t i = 0; i < size; ++i) {
      members.push_back(
          static_cast<hp::index_t>(rng.uniform(num_vertices)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

const hp::hyper::Hypergraph& cellzome() {
  static const hp::hyper::Hypergraph h =
      hp::bio::cellzome_surrogate().hypergraph;
  return h;
}

void BM_KCoreOverlap(benchmark::State& state) {
  const auto h = random_hypergraph(42, static_cast<hp::index_t>(state.range(0)),
                                   static_cast<hp::index_t>(state.range(0)),
                                   8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::core_decomposition(h));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KCoreOverlap)->Range(64, 4096)->Complexity();

void BM_KCoreOverlapMapBaseline(benchmark::State& state) {
  const auto h = random_hypergraph(42, static_cast<hp::index_t>(state.range(0)),
                                   static_cast<hp::index_t>(state.range(0)),
                                   8);
  for (auto _ : state) {
    MapPeelBaseline baseline{h};
    benchmark::DoNotOptimize(baseline.run());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KCoreOverlapMapBaseline)->Range(64, 4096)->Complexity();

void BM_KCoreNaive(benchmark::State& state) {
  const auto h = random_hypergraph(42, static_cast<hp::index_t>(state.range(0)),
                                   static_cast<hp::index_t>(state.range(0)),
                                   8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::core_decomposition_naive(h));
  }
  state.SetComplexityN(state.range(0));
}
// The naive reference is quadratic-plus; cap the sweep so the binary
// still completes quickly.
BENCHMARK(BM_KCoreNaive)->Range(64, 1024)->Complexity();

void BM_KCoreParallel(benchmark::State& state) {
  const auto h = random_hypergraph(42, 2048, 2048, 8);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hp::hyper::core_decomposition_parallel(h, threads));
  }
}
BENCHMARK(BM_KCoreParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_KCoreCellzomeOverlap(benchmark::State& state) {
  const auto& h = cellzome();
  hp::hyper::PeelStats stats;
  for (auto _ : state) {
    stats = {};
    benchmark::DoNotOptimize(hp::hyper::core_decomposition(h, &stats));
  }
  // Substrate counters for the last run: the two terms of the paper's
  // bound (overlap maintenance, containment probing) plus peel shape.
  state.counters["overlap_decrements"] =
      static_cast<double>(stats.overlap_decrements);
  state.counters["containment_probes"] =
      static_cast<double>(stats.containment_probes);
  state.counters["cascaded_deletions"] =
      static_cast<double>(stats.cascaded_edge_deletions);
  state.counters["peel_rounds"] = static_cast<double>(stats.peel_rounds);
  state.counters["peak_queue"] =
      static_cast<double>(stats.peak_queue_length);
}
BENCHMARK(BM_KCoreCellzomeOverlap);

void BM_KCoreCellzomeOverlapMapBaseline(benchmark::State& state) {
  const auto& h = cellzome();
  for (auto _ : state) {
    MapPeelBaseline baseline{h};
    benchmark::DoNotOptimize(baseline.run());
  }
}
BENCHMARK(BM_KCoreCellzomeOverlapMapBaseline);

void BM_KCoreCellzomeNaive(benchmark::State& state) {
  const auto& h = cellzome();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::core_decomposition_naive(h));
  }
}
BENCHMARK(BM_KCoreCellzomeNaive);

void BM_KCoreCellzomeParallel(benchmark::State& state) {
  const auto& h = cellzome();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::core_decomposition_parallel(h));
  }
}
BENCHMARK(BM_KCoreCellzomeParallel);

// --- Frontier-vs-stamp ablation (scripts/ci.sh mode) -----------------

bool bit_identical(const hp::hyper::HyperCoreResult& a,
                   const hp::hyper::HyperCoreResult& b) {
  return a.max_core == b.max_core && a.vertex_core == b.vertex_core &&
         a.edge_core == b.edge_core && a.in_reduced == b.in_reduced &&
         a.level_vertices == b.level_vertices &&
         a.level_edges == b.level_edges;
}

template <typename Fn>
double best_seconds(int reps, const Fn& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    hp::Timer timer;
    benchmark::DoNotOptimize(fn());
    const double s = timer.seconds();
    if (i == 0 || s < best) best = s;
  }
  return best;
}

int run_frontier_ablation(const hp::Args& args) {
  const hp::index_t proteins =
      static_cast<hp::index_t>(args.get_int("proteins", 1000000));
  const bool quick = args.get_bool("quick", false);
  const std::string json_path = args.get("json", "");
  const int reps = quick ? 2 : 3;

  std::printf("=== k-core frontier ablation: %d pool lanes, %d hardware ===\n",
              hp::par::ThreadPool::global().thread_count(),
              hp::par::hardware_threads());

  // Self-check 1 (paper scale, both disciplines): sequential and
  // parallel frontier engines must be bit-identical to their scan
  // twins before any timing is trusted.
  {
    const auto& h = cellzome();
    if (!bit_identical(hp::hyper::core_decomposition(h),
                       hp::hyper::core_decomposition_scan(h))) {
      std::fprintf(stderr, "frontier ablation: sequential frontier and scan "
                           "engines disagree on the Cellzome surrogate\n");
      return 1;
    }
    if (!bit_identical(hp::hyper::core_decomposition_parallel(h),
                       hp::hyper::core_decomposition_parallel_scan(h))) {
      std::fprintf(stderr, "frontier ablation: parallel frontier and scan "
                           "engines disagree on the Cellzome surrogate\n");
      return 1;
    }
  }

  // The gate workload: a scaled surrogate where per-round |V| rescans
  // dominate the legacy engine.
  hp::bio::CellzomeParams params = hp::bio::scaled_cellzome_params(proteins);
  const hp::hyper::Hypergraph big =
      hp::bio::cellzome_surrogate(params).hypergraph;
  std::printf("scaled surrogate: |V| = %llu, |F| = %llu, |pins| = %llu\n",
              static_cast<unsigned long long>(big.num_vertices()),
              static_cast<unsigned long long>(big.num_edges()),
              static_cast<unsigned long long>(big.num_pins()));

  // Self-check 2 (gate scale): one full run per engine, compared
  // bit-for-bit.
  {
    const auto frontier = hp::hyper::core_decomposition_parallel(big);
    const auto scan = hp::hyper::core_decomposition_parallel_scan(big);
    if (!bit_identical(frontier, scan)) {
      std::fprintf(stderr, "frontier ablation: engines disagree on the "
                           "scaled surrogate -- refusing to time\n");
      return 1;
    }
    std::printf("self-check ok: engines bit-identical (max_core = %u)\n",
                static_cast<unsigned>(frontier.max_core));
  }

  hp::hyper::PeelStats frontier_stats;
  const double frontier_seconds = best_seconds(reps, [&] {
    return hp::hyper::core_decomposition_parallel(big, 0, &frontier_stats);
  });
  hp::hyper::PeelStats scan_stats;
  const double scan_seconds = best_seconds(reps, [&] {
    return hp::hyper::core_decomposition_parallel_scan(big, 0, &scan_stats);
  });
  const double speedup =
      frontier_seconds > 0.0 ? scan_seconds / frontier_seconds : 0.0;

  std::printf("scan-and-stamp: %.3fs   frontier: %.3fs   speedup: %.2fx\n",
              scan_seconds, frontier_seconds, speedup);
  std::printf("frontier pushes: %llu   wasted: %llu\n",
              static_cast<unsigned long long>(frontier_stats.frontier_pushes),
              static_cast<unsigned long long>(frontier_stats.frontier_wasted));

  if (!json_path.empty()) {
    std::ofstream out{json_path};
    out << "{\n  \"benchmark\": \"bench_micro_kcore\",\n"
        << "  \"hardware_threads\": " << hp::par::hardware_threads() << ",\n"
        << "  \"pool_lanes\": "
        << hp::par::ThreadPool::global().thread_count() << ",\n"
        << "  \"proteins\": " << proteins << ",\n"
        << "  \"num_vertices\": " << big.num_vertices() << ",\n"
        << "  \"num_edges\": " << big.num_edges() << ",\n"
        << "  \"self_check\": true,\n"
        << "  \"scan_seconds\": " << scan_seconds << ",\n"
        << "  \"frontier_seconds\": " << frontier_seconds << ",\n"
        << "  \"frontier_speedup\": " << speedup << ",\n"
        << "  \"frontier_pushes\": " << frontier_stats.frontier_pushes
        << ",\n"
        << "  \"frontier_wasted\": " << frontier_stats.frontier_wasted
        << "\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick/--json select the ablation mode used by scripts/ci.sh;
  // without them this is a normal google-benchmark binary.
  const hp::Args args{argc, argv};
  if (args.get_bool("quick", false) || !args.get("json", "").empty()) {
    return run_frontier_ablation(args);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
