// Section 4 reproduction: vertex covers as bait-selection policies.
//
// Paper results on the Cellzome hypergraph:
//   * greedy minimum-cardinality cover: 109 proteins, avg degree ~ 3.7;
//   * greedy cover with w(v) = deg(v)^2: 233 proteins, avg degree ~ 1.14;
//   * 2-multicover of the 229 non-singleton complexes: 558 proteins,
//     avg degree ~ 1.74;
//   * the actual Cellzome experiment: 459 baits, avg degree ~ 1.85
//     (429 pull down one complex, 26 two, 4 three).
//
// Plus the reliability experiment the paper motivates: with 70 %
// per-pulldown success, how many complexes does each bait set recover?
//
// Usage: bench_sec4_covers [--seed N] [--trials N]
#include <cstdio>

#include "bio/bait.hpp"
#include "bio/cellzome_synth.hpp"
#include "bio/tap_sim.hpp"
#include "core/cover_pd.hpp"
#include "util/args.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  hp::bio::CellzomeParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const int trials = static_cast<int>(args.get_int("trials", 200));

  const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const hp::hyper::Hypergraph& h = data.hypergraph;

  const hp::bio::BaitSelection unit =
      hp::bio::select_baits(h, hp::bio::BaitStrategy::kMinCardinality);
  const hp::bio::BaitSelection deg2 =
      hp::bio::select_baits(h, hp::bio::BaitStrategy::kDegreeSquared);
  const hp::bio::BaitSelection twice =
      hp::bio::select_baits(h, hp::bio::BaitStrategy::kDoubleCoverage);

  std::puts("=== Section 4: bait selection by hypergraph covers ===\n");
  {
    hp::Table t{{"strategy", "paper size", "measured size",
                 "paper avg degree", "measured avg degree"}};
    t.row()
        .cell("greedy min-cardinality cover")
        .cell("109")
        .cell(static_cast<std::uint64_t>(unit.baits.size()))
        .cell("3.7")
        .cell(unit.average_degree, 2);
    t.row()
        .cell("greedy cover, w = deg^2")
        .cell("233")
        .cell(static_cast<std::uint64_t>(deg2.baits.size()))
        .cell("1.14")
        .cell(deg2.average_degree, 2);
    t.row()
        .cell("greedy 2-multicover, w = deg^2")
        .cell("558")
        .cell(static_cast<std::uint64_t>(twice.baits.size()))
        .cell("1.74")
        .cell(twice.average_degree, 2);
    t.row()
        .cell("Cellzome experiment (reported)")
        .cell("459")
        .cell("-")
        .cell("1.85")
        .cell("-");
    t.print();
  }
  std::printf("\ncomplexes excluded from the 2-multicover (singletons): "
              "paper 3, measured %zu\n",
              twice.excluded_complexes.size());

  // Pulldown multiplicity distribution of the low-degree cover, to
  // compare with the Cellzome baits (429 pull one complex, 26 two, 4
  // three).
  std::puts("\n--- Complexes pulled down per bait (deg^2 cover) ---");
  {
    hp::Histogram counts;
    for (hp::index_t c : hp::bio::pulldown_counts(h, deg2.baits)) {
      counts.add(c);
    }
    hp::Table t{{"complexes per bait", "baits (measured)",
                 "Cellzome baits (paper)"}};
    for (std::size_t d = 1; d <= counts.max_value(); ++d) {
      if (counts.count(d) == 0 && d > 3) continue;
      const char* paper = d == 1 ? "429" : d == 2 ? "26" : d == 3 ? "4" : "-";
      t.row()
          .cell(static_cast<std::uint64_t>(d))
          .cell(static_cast<std::uint64_t>(counts.count(d)))
          .cell(paper);
    }
    t.print();
  }

  // Dual lower bound: how close is greedy to optimal on this instance?
  {
    const hp::hyper::PrimalDualResult pd =
        hp::hyper::primal_dual_cover(h, hp::hyper::unit_weights(h));
    std::printf(
        "\ncover quality certificate: greedy %zu vs dual lower bound %.1f "
        "(ratio %.2f; H_m guarantee %.2f)\n",
        unit.baits.size(), pd.dual_value,
        static_cast<double>(unit.baits.size()) / pd.dual_value,
        hp::hyper::harmonic(h.num_edges()));
  }

  // Reliability panel: TAP simulation at the Cellzome 70 % success rate.
  std::puts("\n--- TAP reliability simulation (70 % per-pulldown success) ---");
  {
    hp::Rng rng{params.seed ^ 0x7A9ULL};
    const hp::bio::TapSimParams sim{0.7, trials};
    hp::Table t{{"bait set", "baits", "mean complexes recovered", "min",
                 "max"}};
    const struct {
      const char* name;
      const hp::bio::BaitSelection* sel;
    } rows[] = {{"min-cardinality cover", &unit},
                {"deg^2 cover", &deg2},
                {"2-multicover", &twice}};
    for (const auto& row : rows) {
      const hp::bio::TapSimResult r =
          hp::bio::simulate_tap(h, row.sel->baits, sim, rng);
      t.row()
          .cell(row.name)
          .cell(static_cast<std::uint64_t>(row.sel->baits.size()))
          .cell(r.mean_recovered_fraction, 3)
          .cell(r.min_recovered_fraction, 3)
          .cell(r.max_recovered_fraction, 3);
    }
    t.print();
    std::puts(
        "\nthe 2-multicover converts the experiment's 70 % per-pulldown\n"
        "reproducibility into ~91 % per-complex recovery (1 - 0.3^2),\n"
        "which is the paper's motivation for multicovers.");
  }
  return 0;
}
