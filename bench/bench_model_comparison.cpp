// Section 1.2/1.3 reproduction: the storage and fidelity argument for
// the hypergraph model against the two baseline graph representations.
//
// Paper claims:
//   * a complex of n proteins costs O(n) in the hypergraph but O(n^2)
//     edges in the clique-expanded protein interaction graph;
//   * a protein in m complexes generates O(m^2) edges in the complex
//     intersection graph;
//   * clique expansion produces "unusually high clustering coefficients"
//     (citing Maslov-Sneppen-Alon).
//
// We measure all three on the Cellzome surrogate and on a sweep of
// synthetic datasets with growing complex sizes.
//
// Usage: bench_model_comparison [--seed N]
#include <cstdio>

#include "bio/cellzome_synth.hpp"
#include "core/context/analysis_context.hpp"
#include "core/projection.hpp"
#include "graph/graph_stats.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

void cost_row(hp::Table& t, const char* name,
              const hp::hyper::AnalysisContext& ctx) {
  const hp::hyper::RepresentationCosts c = ctx.representation_costs();
  t.row()
      .cell(name)
      .cell(static_cast<std::uint64_t>(c.hypergraph_pins))
      .cell(static_cast<std::uint64_t>(c.clique_edges))
      .cell(static_cast<std::uint64_t>(c.star_edges))
      .cell(static_cast<std::uint64_t>(c.intersection_edges))
      .cell(static_cast<std::uint64_t>(c.hypergraph_bytes))
      .cell(static_cast<std::uint64_t>(c.clique_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));

  hp::bio::CellzomeParams params;
  params.seed = seed;
  hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  // One shared artifact cache: the projection graphs built for the cost
  // table are the same objects reused by the clustering section below.
  const hp::hyper::AnalysisContext ctx{std::move(data.hypergraph)};

  std::puts(
      "=== Model comparison: hypergraph vs graph representations ===\n");
  {
    hp::Table t{{"dataset", "hypergraph pins", "clique edges", "star edges",
                 "intersection edges", "hypergraph bytes", "clique bytes"}};
    cost_row(t, "cellzome", ctx);

    // Sweep: one complex of growing size n; clique cost grows as n^2.
    for (hp::index_t n : {10u, 20u, 40u, 80u}) {
      hp::hyper::HypergraphBuilder b{n};
      std::vector<hp::index_t> all(n);
      for (hp::index_t i = 0; i < n; ++i) all[i] = i;
      b.add_edge(all);
      char name[32];
      std::snprintf(name, sizeof name, "1 complex of %u", n);
      const hp::hyper::AnalysisContext row_ctx{b.build()};
      cost_row(t, name, row_ctx);
    }

    // Sweep: one protein in m complexes; intersection cost grows as m^2.
    for (hp::index_t m : {5u, 10u, 20u}) {
      hp::hyper::HypergraphBuilder b{m + 1};
      for (hp::index_t e = 0; e < m; ++e) {
        b.add_edge({0, static_cast<hp::index_t>(e + 1)});
      }
      char name[32];
      std::snprintf(name, sizeof name, "1 protein in %u", m);
      const hp::hyper::AnalysisContext row_ctx{b.build()};
      cost_row(t, name, row_ctx);
    }
    t.print();
  }

  // Clustering-coefficient inflation from clique expansion; the graphs
  // are the cached projections already costed above, not rebuilds.
  std::puts("\n--- Clustering coefficient inflation (Maslov et al.) ---");
  {
    const hp::graph::Graph& clique = ctx.clique_projection();
    const hp::graph::Graph& star = ctx.star_projection();
    hp::Table t{{"protein interaction model", "avg clustering coeff",
                 "transitivity"}};
    t.row()
        .cell("clique expansion")
        .cell(hp::graph::average_clustering_coefficient(clique), 3)
        .cell(hp::graph::transitivity(clique), 3);
    t.row()
        .cell("star expansion (bait model)")
        .cell(hp::graph::average_clustering_coefficient(star), 3)
        .cell(hp::graph::transitivity(star), 3);
    t.print();
    std::puts(
        "\nclique expansion manufactures near-1 clustering by construction "
        "-- the artifact the paper (citing Maslov/Sneppen/Alon) warns "
        "about; the hypergraph stores the same information in O(sum |f|).");
  }
  return 0;
}
