// Ablation B: microbenchmarks of the cover algorithms.
//
//   * greedy with the lazy-deletion heap (our implementation of Fig. 5)
//   * greedy with a naive full rescan per selection (the O(|V| |F|)
//     baseline the lazy heap replaces)
//   * primal-dual cover (the alternative the paper leaves as "current
//     work"; we also compare solution quality in the counters)
#include <benchmark/benchmark.h>

#include <limits>

#include "bio/cellzome_synth.hpp"
#include "core/cover.hpp"
#include "core/cover_pd.hpp"
#include "core/multicover.hpp"
#include "util/rng.hpp"

namespace {

hp::hyper::Hypergraph random_hypergraph(std::uint64_t seed,
                                        hp::index_t num_vertices,
                                        hp::index_t num_edges,
                                        hp::index_t max_size) {
  hp::Rng rng{seed};
  hp::hyper::HypergraphBuilder builder{num_vertices};
  std::vector<hp::index_t> members;
  for (hp::index_t e = 0; e < num_edges; ++e) {
    const hp::index_t size =
        2 + static_cast<hp::index_t>(rng.uniform(max_size - 1));
    members.clear();
    for (hp::index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<hp::index_t>(rng.uniform(num_vertices)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

/// Reference greedy that rescans every vertex per selection -- the
/// baseline justifying the lazy heap.
std::vector<hp::index_t> greedy_cover_rescan(
    const hp::hyper::Hypergraph& h, const std::vector<double>& weights) {
  std::vector<bool> covered(h.num_edges(), false);
  std::vector<bool> chosen(h.num_vertices(), false);
  std::vector<hp::index_t> uncovered(h.num_vertices());
  for (hp::index_t v = 0; v < h.num_vertices(); ++v) {
    uncovered[v] = h.vertex_degree(v);
  }
  hp::index_t remaining = h.num_edges();
  std::vector<hp::index_t> cover;
  while (remaining > 0) {
    double best_cost = std::numeric_limits<double>::infinity();
    hp::index_t best = hp::kInvalidIndex;
    for (hp::index_t v = 0; v < h.num_vertices(); ++v) {
      if (chosen[v] || uncovered[v] == 0) continue;
      const double cost = weights[v] / static_cast<double>(uncovered[v]);
      if (cost < best_cost) {
        best_cost = cost;
        best = v;
      }
    }
    chosen[best] = true;
    cover.push_back(best);
    for (hp::index_t e : h.edges_of(best)) {
      if (covered[e]) continue;
      covered[e] = true;
      --remaining;
      for (hp::index_t w : h.vertices_of(e)) {
        if (!chosen[w] && uncovered[w] > 0) --uncovered[w];
      }
    }
  }
  return cover;
}

void BM_GreedyCoverLazyHeap(benchmark::State& state) {
  const auto h = random_hypergraph(
      7, static_cast<hp::index_t>(state.range(0)),
      static_cast<hp::index_t>(state.range(0)), 6);
  const auto w = hp::hyper::unit_weights(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::greedy_vertex_cover(h, w));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyCoverLazyHeap)->Range(128, 8192)->Complexity();

void BM_GreedyCoverRescan(benchmark::State& state) {
  const auto h = random_hypergraph(
      7, static_cast<hp::index_t>(state.range(0)),
      static_cast<hp::index_t>(state.range(0)), 6);
  const auto w = hp::hyper::unit_weights(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_cover_rescan(h, w));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyCoverRescan)->Range(128, 4096)->Complexity();

void BM_PrimalDualCover(benchmark::State& state) {
  const auto h = random_hypergraph(
      7, static_cast<hp::index_t>(state.range(0)),
      static_cast<hp::index_t>(state.range(0)), 6);
  const auto w = hp::hyper::unit_weights(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::primal_dual_cover(h, w));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrimalDualCover)->Range(128, 8192)->Complexity();

/// Quality comparison on the Cellzome surrogate (reported as counters:
/// cover sizes and the dual lower bound).
void BM_CoverQualityCellzome(benchmark::State& state) {
  const hp::hyper::Hypergraph h = hp::bio::cellzome_surrogate().hypergraph;
  const auto w = hp::hyper::unit_weights(h);
  for (auto _ : state) {
    const auto greedy = hp::hyper::greedy_vertex_cover(h, w);
    const auto pd = hp::hyper::primal_dual_cover(h, w);
    state.counters["greedy_size"] =
        static_cast<double>(greedy.vertices.size());
    state.counters["primal_dual_size"] =
        static_cast<double>(pd.vertices.size());
    state.counters["dual_lower_bound"] = pd.dual_value;
  }
}
BENCHMARK(BM_CoverQualityCellzome);

void BM_MulticoverCellzome(benchmark::State& state) {
  const hp::hyper::Hypergraph h = hp::bio::cellzome_surrogate().hypergraph;
  const auto w = hp::hyper::degree_squared_weights(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::greedy_multicover(h, w, 2));
  }
}
BENCHMARK(BM_MulticoverCellzome);

}  // namespace

BENCHMARK_MAIN();
