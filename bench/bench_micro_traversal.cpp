// Microbenchmarks of the traversal layer: hypergraph BFS, connected
// components, all-pairs path summaries, and overlap-table construction
// (the dominant setup cost of the k-core algorithm).
#include <benchmark/benchmark.h>

#include "bio/cellzome_synth.hpp"
#include "core/overlap.hpp"
#include "core/traversal.hpp"
#include "util/rng.hpp"

namespace {

hp::hyper::Hypergraph random_hypergraph(std::uint64_t seed,
                                        hp::index_t num_vertices,
                                        hp::index_t num_edges,
                                        hp::index_t max_size) {
  hp::Rng rng{seed};
  hp::hyper::HypergraphBuilder builder{num_vertices};
  std::vector<hp::index_t> members;
  for (hp::index_t e = 0; e < num_edges; ++e) {
    const hp::index_t size =
        2 + static_cast<hp::index_t>(rng.uniform(max_size - 1));
    members.clear();
    for (hp::index_t i = 0; i < size; ++i) {
      members.push_back(static_cast<hp::index_t>(rng.uniform(num_vertices)));
    }
    builder.add_edge(members);
  }
  return builder.build();
}

const hp::hyper::Hypergraph& cellzome() {
  static const hp::hyper::Hypergraph h =
      hp::bio::cellzome_surrogate().hypergraph;
  return h;
}

void BM_HyperBfs(benchmark::State& state) {
  const auto h = random_hypergraph(
      3, static_cast<hp::index_t>(state.range(0)),
      static_cast<hp::index_t>(state.range(0)), 8);
  hp::index_t source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::bfs_distances(h, source));
    source = (source + 1) % h.num_vertices();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HyperBfs)->Range(256, 16384)->Complexity();

void BM_Components(benchmark::State& state) {
  const auto h = random_hypergraph(
      5, static_cast<hp::index_t>(state.range(0)),
      static_cast<hp::index_t>(state.range(0)) / 2, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::connected_components(h));
  }
}
BENCHMARK(BM_Components)->Range(256, 16384);

void BM_OverlapTable(benchmark::State& state) {
  const auto h = random_hypergraph(
      9, static_cast<hp::index_t>(state.range(0)),
      static_cast<hp::index_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::OverlapTable{h});
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OverlapTable)->Range(256, 8192)->Complexity();

void BM_PathSummaryCellzome(benchmark::State& state) {
  const auto& h = cellzome();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::path_summary(h));
  }
}
BENCHMARK(BM_PathSummaryCellzome);

void BM_BfsCellzome(benchmark::State& state) {
  const auto& h = cellzome();
  hp::index_t source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hp::hyper::bfs_distances(h, source));
    source = (source + 1) % h.num_vertices();
  }
}
BENCHMARK(BM_BfsCellzome);

}  // namespace

BENCHMARK_MAIN();
