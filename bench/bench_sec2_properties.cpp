// Section 2 reproduction: structural properties of the yeast
// protein-complex hypergraph.
//
// Paper values: 33 connected components, largest = 1,263 proteins /
// 99 complexes; 846 degree-1 proteins; max protein degree 21 (ADH1);
// diameter 6; average path length 2.568 ("small world").
//
// Usage: bench_sec2_properties [--seed N]
#include <cstdio>

#include "bio/cellzome_synth.hpp"
#include "core/context/analysis_context.hpp"
#include "core/smallworld.hpp"
#include "core/stats.hpp"
#include "core/traversal.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  hp::bio::CellzomeParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 20040426));

  hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
  const hp::hyper::AnalysisContext ctx{std::move(data.hypergraph)};
  const hp::hyper::Hypergraph& h = ctx.hypergraph();
  const hp::hyper::HypergraphSummary& s = ctx.summary();

  hp::Timer timer;
  const hp::hyper::HyperPathSummary& paths = ctx.paths();
  const double path_seconds = timer.seconds();

  std::puts(
      "=== Section 2: properties of the protein complex hypergraph ===\n");
  hp::Table t{{"property", "paper", "measured"}};
  t.row().cell("proteins |V|").cell("1361").cell(
      static_cast<std::uint64_t>(s.num_vertices));
  t.row().cell("complexes |F|").cell("232").cell(
      static_cast<std::uint64_t>(s.num_edges));
  t.row()
      .cell("memberships |E|")
      .cell("(not stated)")
      .cell(static_cast<std::uint64_t>(s.num_pins));
  t.row().cell("connected components").cell("33").cell(
      static_cast<std::uint64_t>(s.num_components));
  t.row()
      .cell("largest component proteins")
      .cell("1263")
      .cell(static_cast<std::uint64_t>(s.largest_component_vertices));
  t.row()
      .cell("largest component complexes")
      .cell("99")
      .cell(static_cast<std::uint64_t>(s.largest_component_edges));
  t.row()
      .cell("degree-1 proteins")
      .cell("846")
      .cell(static_cast<std::uint64_t>(s.degree_one_vertices));
  t.row()
      .cell("max protein degree (ADH1)")
      .cell("21")
      .cell(static_cast<std::uint64_t>(s.max_vertex_degree));
  t.row().cell("max complex size").cell("~100").cell(
      static_cast<std::uint64_t>(s.max_edge_size));
  t.row().cell("diameter").cell("6").cell(
      static_cast<std::uint64_t>(paths.diameter));
  t.row()
      .cell("average path length")
      .cell("2.568")
      .cell(paths.average_length, 3);
  t.print();

  hp::index_t max_deg_vertex = 0;
  for (hp::index_t v = 0; v < h.num_vertices(); ++v) {
    if (h.vertex_degree(v) > h.vertex_degree(max_deg_vertex)) {
      max_deg_vertex = v;
    }
  }
  std::printf("\nhighest-degree protein: %s (degree %u)\n",
              data.proteins.name_of(max_deg_vertex).c_str(),
              h.vertex_degree(max_deg_vertex));
  std::printf("all-pairs BFS time: %s\n",
              hp::format_duration(path_seconds).c_str());

  // Small-world check against a degree-preserving null model; the
  // observed side reuses the context's cached all-pairs summary.
  hp::Rng rng{params.seed ^ 0x5157ULL};
  const hp::hyper::SmallWorldReport sw =
      hp::hyper::small_world_report(h, ctx.paths(), rng);
  std::puts("\n--- Small-world assessment ---");
  hp::Table sw_table{{"quantity", "observed", "null model (config. model)"}};
  sw_table.row()
      .cell("average path length")
      .cell(sw.observed.average_length, 3)
      .cell(sw.null_model.average_length, 3);
  sw_table.row()
      .cell("diameter")
      .cell(static_cast<std::uint64_t>(sw.observed.diameter))
      .cell(static_cast<std::uint64_t>(sw.null_model.diameter));
  sw_table.print();
  std::printf(
      "path ratio observed/null = %.3f (near 1, and far below the linear "
      "scale of a lattice: small world)\n",
      sw.path_ratio);
  return 0;
}
