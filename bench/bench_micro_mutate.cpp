// Incremental-vs-rebuild ablation for the mutable pipeline
// (src/core/mutate/, DESIGN.md section 12).
//
// Workloads, per instance (the calibrated 1,361-protein surrogate and a
// scaled one for the CI gate):
//
//   * single-edge insert / delete -- one hyperedge edit, then bring the
//     incrementally maintained artifact set (degrees, both histograms,
//     components) back up to date. This is the O(|dirty|) fast path a
//     streaming consumer pays per update.
//   * insert+cores -- the same edit but also refreshing the core
//     decomposition each op. Honest row: on Cellzome-like topology a
//     random edge lands in the giant component, the bounded repair's
//     affected region is that whole component, and the repair escalates
//     to a full re-peel -- so this row tracks the peel cost, not the
//     dirty-region size. Small-component edits do repair in microseconds
//     (see the repair counters the run prints).
//   * batch-100 -- 100 single-edge updates with one coherence point
//     (all artifacts including cores); reported per update. This is the
//     amortization the batch API exists for.
//   * rebuild baseline -- what every update cost before the mutable
//     pipeline existed: throw the context away and rebuild the same
//     artifact set cold (snapshot copy + degrees + histograms +
//     components + cores).
//
// The CI gate (scripts/ci.sh) asserts that on the scaled surrogate the
// cheap-tier single-edge updates AND the amortized batch-100 updates
// are >= 20x faster than the rebuild baseline; the gate value is the
// minimum of those three speedups ("gate_speedup" in BENCH_mutate.json).
//
// The run self-checks: after each workload the structure is restored,
// and the final core ladder must equal the initial one bit-for-bit.
//
// Usage: bench_micro_mutate [--seed N] [--proteins N] [--quick] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bio/cellzome_synth.hpp"
#include "core/context/analysis_context.hpp"
#include "core/mutate/mutable_context.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using hp::index_t;
using hp::hyper::AnalysisContext;
using hp::hyper::Hypergraph;
using hp::hyper::MutableAnalysisContext;

struct WorkloadTiming {
  std::string name;
  double per_update_seconds = 0.0;
  std::size_t updates = 0;
  double speedup = 0.0;  // rebuild baseline / per-update
};

struct InstanceTiming {
  std::string name;
  hp::count_t num_vertices = 0;
  hp::count_t num_edges = 0;
  double rebuild_seconds = 0.0;
  hp::count_t core_repairs = 0;
  hp::count_t core_repair_fallbacks = 0;
  std::vector<WorkloadTiming> workloads;
};

/// A random edge proposal over the (all-alive) base vertex ids.
std::vector<index_t> random_members(hp::Rng& rng, index_t num_vertices) {
  const index_t size = 2 + static_cast<index_t>(rng.uniform(4));
  std::vector<index_t> members;
  for (index_t i = 0; i < size; ++i) {
    members.push_back(static_cast<index_t>(rng.uniform(num_vertices)));
  }
  return members;  // duplicates are fine; add_hyperedge dedups
}

/// Refresh the artifacts maintained with true O(|dirty|)-per-op
/// semantics (plus the O(V) canonical component labeling).
void refresh_cheap(MutableAnalysisContext& ctx) {
  ctx.vertex_degrees();
  ctx.vertex_degree_histogram();
  ctx.edge_size_histogram();
  ctx.components();
}

InstanceTiming run_instance(const std::string& name, const Hypergraph& base,
                            std::uint64_t seed, bool quick) {
  const std::size_t cheap_ops = quick ? 50 : 200;
  const std::size_t core_ops = quick ? 3 : 6;
  const std::size_t batches = quick ? 2 : 3;
  const int rebuild_reps = quick ? 2 : 3;

  InstanceTiming out;
  out.name = name;
  out.num_vertices = base.num_vertices();
  out.num_edges = base.num_edges();

  MutableAnalysisContext ctx{base};
  refresh_cheap(ctx);
  const std::vector<index_t> initial_levels = ctx.cores().level_vertices;
  const std::vector<index_t> initial_edge_levels = ctx.cores().level_edges;

  // --- rebuild baseline: context teardown + cold rebuild of the same
  // --- artifact set, per update (the pre-mutable-pipeline cost). ------
  {
    double best = 0.0;
    for (int rep = 0; rep < rebuild_reps; ++rep) {
      hp::Timer timer;
      AnalysisContext rebuilt{ctx.snapshot().hypergraph};
      rebuilt.vertex_degree_histogram();
      rebuilt.edge_size_histogram();
      rebuilt.components();
      rebuilt.cores();
      const double s = timer.seconds();
      if (rep == 0 || s < best) best = s;
    }
    out.rebuild_seconds = best;
  }

  hp::Rng rng{seed};

  // --- single-edge insert / delete, cheap tier refreshed per op. ------
  {
    double insert_seconds = 0.0;
    double delete_seconds = 0.0;
    for (std::size_t i = 0; i < cheap_ops; ++i) {
      const std::vector<index_t> members =
          random_members(rng, base.num_vertices());
      hp::Timer insert_timer;
      const index_t e = ctx.graph().add_hyperedge(members);
      refresh_cheap(ctx);
      insert_seconds += insert_timer.seconds();

      hp::Timer delete_timer;
      ctx.graph().remove_hyperedge(e);
      refresh_cheap(ctx);
      delete_seconds += delete_timer.seconds();
    }
    out.workloads.push_back({"single-edge insert",
                             insert_seconds / static_cast<double>(cheap_ops),
                             cheap_ops, 0.0});
    out.workloads.push_back({"single-edge delete",
                             delete_seconds / static_cast<double>(cheap_ops),
                             cheap_ops, 0.0});
  }

  // --- the same, with the core decomposition refreshed every op. ------
  {
    double seconds = 0.0;
    ctx.cores();  // drain the seeds accumulated by the cheap workload
    for (std::size_t i = 0; i < core_ops; ++i) {
      const std::vector<index_t> members =
          random_members(rng, base.num_vertices());
      hp::Timer timer;
      const index_t e = ctx.graph().add_hyperedge(members);
      refresh_cheap(ctx);
      ctx.cores();
      ctx.graph().remove_hyperedge(e);
      refresh_cheap(ctx);
      ctx.cores();
      seconds += timer.seconds();
    }
    out.workloads.push_back({"insert+cores",
                             seconds / static_cast<double>(2 * core_ops),
                             2 * core_ops, 0.0});
  }

  // --- batch-100: one coherence point per 100 single-edge updates. ----
  {
    double seconds = 0.0;
    for (std::size_t b = 0; b < batches; ++b) {
      hp::Timer timer;
      std::vector<index_t> added;
      for (int i = 0; i < 50; ++i) {
        added.push_back(
            ctx.graph().add_hyperedge(random_members(rng, base.num_vertices())));
      }
      for (index_t e : added) ctx.graph().remove_hyperedge(e);
      refresh_cheap(ctx);
      ctx.cores();
      seconds += timer.seconds();
    }
    out.workloads.push_back(
        {"batch-100 (amortized)",
         seconds / static_cast<double>(batches * 100), batches * 100, 0.0});
  }

  for (WorkloadTiming& w : out.workloads) {
    w.speedup = w.per_update_seconds > 0.0
                    ? out.rebuild_seconds / w.per_update_seconds
                    : 0.0;
  }
  out.core_repairs = ctx.apply_stats().core_repairs;
  out.core_repair_fallbacks = ctx.apply_stats().core_repair_fallbacks;

  // Self-check: every workload restored the structure, so the final
  // core ladder must be the initial one.
  const hp::hyper::HyperCoreResult& final_cores = ctx.cores();
  if (final_cores.level_vertices != initial_levels ||
      final_cores.level_edges != initial_edge_levels) {
    std::fprintf(stderr,
                 "bench_micro_mutate: %s: core ladder changed after "
                 "restore -- incremental maintenance is broken\n",
                 name.c_str());
    std::exit(1);
  }
  return out;
}

void print_instance(const InstanceTiming& inst) {
  std::printf("\n--- %s (|V| = %llu, |F| = %llu; rebuild baseline %s; "
              "%llu repairs, %llu fallbacks) ---\n",
              inst.name.c_str(),
              static_cast<unsigned long long>(inst.num_vertices),
              static_cast<unsigned long long>(inst.num_edges),
              hp::format_duration(inst.rebuild_seconds).c_str(),
              static_cast<unsigned long long>(inst.core_repairs),
              static_cast<unsigned long long>(inst.core_repair_fallbacks));
  hp::Table t{{"workload", "per update", "updates", "vs rebuild"}};
  for (const WorkloadTiming& w : inst.workloads) {
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.1fx", w.speedup);
    t.row()
        .cell(w.name)
        .cell(hp::format_duration(w.per_update_seconds))
        .cell(std::to_string(w.updates))
        .cell(speedup);
  }
  t.print();
}

void write_json(const std::string& path,
                const std::vector<InstanceTiming>& instances,
                double gate_speedup) {
  std::ofstream out{path};
  out << "{\n  \"benchmark\": \"bench_micro_mutate\",\n"
      << "  \"gate_speedup\": " << gate_speedup << ",\n"
      << "  \"instances\": [\n";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const InstanceTiming& inst = instances[i];
    out << "    {\n      \"name\": \"" << inst.name << "\",\n"
        << "      \"num_vertices\": " << inst.num_vertices << ",\n"
        << "      \"num_edges\": " << inst.num_edges << ",\n"
        << "      \"rebuild_seconds\": " << inst.rebuild_seconds << ",\n"
        << "      \"core_repairs\": " << inst.core_repairs << ",\n"
        << "      \"core_repair_fallbacks\": " << inst.core_repair_fallbacks
        << ",\n      \"workloads\": [\n";
    for (std::size_t j = 0; j < inst.workloads.size(); ++j) {
      const WorkloadTiming& w = inst.workloads[j];
      out << "        {\"name\": \"" << w.name
          << "\", \"per_update_seconds\": " << w.per_update_seconds
          << ", \"updates\": " << w.updates << ", \"speedup\": " << w.speedup
          << "}" << (j + 1 < inst.workloads.size() ? "," : "") << "\n";
    }
    out << "      ]\n    }" << (i + 1 < instances.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const hp::Args args{argc, argv};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 20040426));
  const bool quick = args.get_bool("quick", false);
  const std::string json_path = args.get("json", "");
  const index_t scaled_target = static_cast<index_t>(
      args.get_int("proteins", quick ? 20000 : 100000));

  std::printf("=== mutable pipeline: incremental update vs full context "
              "rebuild ===\n");

  std::vector<InstanceTiming> instances;
  {
    hp::bio::CellzomeParams params;
    params.seed = seed;
    const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
    instances.push_back(
        run_instance("cellzome calibrated", data.hypergraph, seed, quick));
  }
  {
    hp::bio::CellzomeParams params =
        hp::bio::scaled_cellzome_params(scaled_target);
    params.seed = seed;
    const hp::bio::ComplexDataset data = hp::bio::cellzome_surrogate(params);
    instances.push_back(
        run_instance("cellzome scaled", data.hypergraph, seed, quick));
  }

  for (const InstanceTiming& inst : instances) print_instance(inst);

  // Gate value: the scaled instance's worst speedup among the workloads
  // with incremental/amortized semantics (the insert+cores row is
  // reported but not gated; see the header comment).
  double gate_speedup = 0.0;
  for (const WorkloadTiming& w : instances.back().workloads) {
    if (w.name == "insert+cores") continue;
    gate_speedup =
        gate_speedup == 0.0 ? w.speedup : std::min(gate_speedup, w.speedup);
  }
  std::printf("\nscaled-surrogate gate speedup (min over gated workloads): "
              "%.1fx\n",
              gate_speedup);

  if (!json_path.empty()) {
    write_json(json_path, instances, gate_speedup);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
